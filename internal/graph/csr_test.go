package graph

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// csrSpec is a compact, generatable description of a random labeled graph
// plus a mutation schedule; testing/quick produces values of it and the CSR
// property tests expand them.
type csrSpec struct {
	Seed    int64
	Nodes   uint8
	Labels  uint8
	Extra   uint8
	Mutates uint8
}

func (s csrSpec) build() *Graph {
	rng := rand.New(rand.NewSource(s.Seed))
	nodes := int(s.Nodes%120) + 2
	labels := int(s.Labels%5) + 1
	extra := int(s.Extra % 60)
	g := New()
	r := g.AddRoot()
	ids := []NodeID{r}
	for i := 1; i < nodes; i++ {
		n := g.AddNode(string(rune('a' + rng.Intn(labels))))
		g.AddEdge(ids[rng.Intn(len(ids))], n)
		ids = append(ids, n)
	}
	for i := 0; i < extra; i++ {
		from := ids[rng.Intn(len(ids))]
		to := ids[rng.Intn(len(ids))]
		if from != to && to != r {
			g.AddEdge(from, to)
		}
	}
	return g
}

// csrMatches checks that a CSR snapshot is element-identical to the
// adjacency it was built from: same row per node, same order, and offsets
// consistent with row lengths.
func csrMatches(t *testing.T, c *CSR, numNodes int, neighbors func(NodeID) []NodeID) bool {
	t.Helper()
	if c.NumNodes() != numNodes {
		t.Logf("CSR covers %d nodes, want %d", c.NumNodes(), numNodes)
		return false
	}
	total := 0
	for i := 0; i < numNodes; i++ {
		n := NodeID(i)
		want := neighbors(n)
		if !slices.Equal(c.Row(n), want) {
			t.Logf("node %d: CSR row %v, want %v", i, c.Row(n), want)
			return false
		}
		if c.Degree(n) != len(want) {
			t.Logf("node %d: degree %d, want %d", i, c.Degree(n), len(want))
			return false
		}
		lo, hi := c.RowBounds(n)
		if int(hi-lo) != len(want) || int(lo) != total {
			t.Logf("node %d: bounds [%d,%d), want len %d at %d", i, lo, hi, len(want), total)
			return false
		}
		total += len(want)
	}
	return c.NumEdges() == total
}

// Property: parent and child CSR snapshots are element-identical to
// Parents/Children on random graphs, including after random edge inserts and
// removes (snapshots are rebuilt after each mutation — a CSR is a snapshot,
// not a view).
func TestQuickCSRMatchesAdjacency(t *testing.T) {
	f := func(s csrSpec) bool {
		g := s.build()
		if !csrMatches(t, g.ParentCSR(), g.NumNodes(), g.Parents) ||
			!csrMatches(t, g.ChildCSR(), g.NumNodes(), g.Children) {
			return false
		}
		// Mutate: random edge inserts and removes, re-snapshot, re-check.
		rng := rand.New(rand.NewSource(s.Seed ^ 0x5eed))
		for m := 0; m < int(s.Mutates%8)+1; m++ {
			from := NodeID(rng.Intn(g.NumNodes()))
			to := NodeID(rng.Intn(g.NumNodes()))
			if rng.Intn(2) == 0 {
				if from != to && to != g.Root() {
					g.AddEdge(from, to)
				}
			} else if ch := g.Children(from); len(ch) > 0 {
				g.RemoveEdge(from, ch[rng.Intn(len(ch))])
			}
			if !csrMatches(t, g.ParentCSR(), g.NumNodes(), g.Parents) ||
				!csrMatches(t, g.ChildCSR(), g.NumNodes(), g.Children) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCSREmptyGraph(t *testing.T) {
	c := NewCSR(0, func(NodeID) []NodeID { return nil })
	if c.NumNodes() != 0 || c.NumEdges() != 0 {
		t.Fatalf("empty CSR: %d nodes, %d edges", c.NumNodes(), c.NumEdges())
	}
}
