package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for debugging and for the
// examples. Nodes are labeled "id:label". Output is deterministic.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(w, "digraph %s {\n", dotID(name)); err != nil {
		return err
	}
	for n := 0; n < g.NumNodes(); n++ {
		shape := "ellipse"
		if NodeID(n) == g.root {
			shape = "doublecircle"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q shape=%s];\n",
			n, fmt.Sprintf("%d:%s", n, g.labels.Name(g.nodeLabel[n])), shape); err != nil {
			return err
		}
	}
	for n := 0; n < g.NumNodes(); n++ {
		for _, c := range g.children[n] {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", n, c); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

func dotID(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '-' || r == ' ' || r == '.' {
			b.WriteByte('_')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Stats summarizes a graph's shape; used in experiment reports.
type Stats struct {
	Nodes     int
	Edges     int
	Labels    int
	MaxDepth  int
	MaxInDeg  int
	MaxOutDeg int
}

// ComputeStats gathers Stats for the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:    g.NumNodes(),
		Edges:    g.NumEdges(),
		Labels:   g.labels.Len(),
		MaxDepth: g.MaxDepth(),
	}
	for n := 0; n < g.NumNodes(); n++ {
		if d := len(g.children[n]); d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
		if d := len(g.parents[n]); d > s.MaxInDeg {
			s.MaxInDeg = d
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d labels=%d depth=%d maxIn=%d maxOut=%d",
		s.Nodes, s.Edges, s.Labels, s.MaxDepth, s.MaxInDeg, s.MaxOutDeg)
}
