package apex

import (
	"math/rand"
	"testing"

	"dkindex/internal/datagen"
	"dkindex/internal/eval"
	"dkindex/internal/graph"
	"dkindex/internal/workload"
)

func load(t *testing.T, g *graph.Graph, specs map[string]int) []workload.WeightedQuery {
	t.Helper()
	out := make([]workload.WeightedQuery, 0, len(specs))
	rec := workload.NewRecorder()
	for s, c := range specs {
		q, err := eval.ParseQuery(g.Labels(), s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < c; i++ {
			rec.Record(q)
		}
	}
	return append(out, rec.Load()...)
}

func TestBuildAndExactHit(t *testing.T) {
	g := graph.FigureOneMovies()
	l := load(t, g, map[string]int{"director.movie.title": 5, "actor.name": 3})
	a, err := Build(g, l, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() == 0 {
		t.Fatal("empty APEX")
	}
	q, _ := eval.ParseQuery(g.Labels(), "director.movie.title")
	res, cost := a.Eval(q)
	truth, _ := eval.Data(g, q)
	if !eval.SameResult(res, truth) {
		t.Errorf("exact hit: %v != %v", res, truth)
	}
	if cost.Validations != 0 || cost.DataNodesValidated != 0 {
		t.Errorf("frequent query should be a pure hash walk, cost=%+v", cost)
	}
}

func TestSuffixHitValidates(t *testing.T) {
	g := graph.FigureOneMovies()
	// Only "movie.title" is frequent; the longer query shares its suffix.
	l := load(t, g, map[string]int{"movie.title": 5})
	a, err := Build(g, l, 5)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := eval.ParseQuery(g.Labels(), "director.movie.title")
	res, cost := a.Eval(q)
	truth, _ := eval.Data(g, q)
	if !eval.SameResult(res, truth) {
		t.Errorf("suffix hit: %v != %v", res, truth)
	}
	if cost.Validations == 0 {
		t.Error("suffix hit should validate the prefix")
	}
}

func TestColdQueryFallsBack(t *testing.T) {
	g := graph.FigureOneMovies()
	l := load(t, g, map[string]int{"movie.title": 5})
	a, err := Build(g, l, 5)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := eval.ParseQuery(g.Labels(), "actor.name")
	res, cost := a.Eval(q)
	truth, _ := eval.Data(g, q)
	if !eval.SameResult(res, truth) {
		t.Errorf("cold query: %v != %v", res, truth)
	}
	if cost.DataNodesValidated == 0 {
		t.Error("cold query should fall back to the data graph")
	}
}

func TestSuffixSupportAggregates(t *testing.T) {
	g := graph.FigureOneMovies()
	// Two different queries share the suffix "title": support aggregates to
	// 4 even though each query alone has 2.
	l := load(t, g, map[string]int{"director.movie.title": 2, "movie.title": 2})
	a, err := Build(g, l, 4)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := eval.ParseQuery(g.Labels(), "title")
	res, cost := a.Eval(q)
	truth, _ := eval.Data(g, q)
	if !eval.SameResult(res, truth) {
		t.Errorf("title: %v != %v", res, truth)
	}
	if cost.Validations != 0 {
		t.Error("aggregated-support suffix should be indexed")
	}
}

func TestBuildErrors(t *testing.T) {
	g := graph.FigureOneMovies()
	if _, err := Build(g, nil, 1); err == nil {
		t.Error("empty load accepted")
	}
	l := load(t, g, map[string]int{"movie.title": 1})
	if _, err := Build(g, l, 100); err == nil {
		t.Error("unreachable support accepted")
	}
}

func TestStaleAfterUpdateRebuildFixes(t *testing.T) {
	// The paper's criticism, demonstrated: after a data change APEX's stored
	// extents are stale; Rebuild is its only recourse.
	g := graph.FigureOneMovies()
	l := load(t, g, map[string]int{"actor.movie.title": 5})
	a, err := Build(g, l, 5)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := eval.ParseQuery(g.Labels(), "actor.movie.title")
	before, _ := a.Eval(q)

	// New reference edge: actor 11 -> movie 9 makes title 16 reachable.
	g.AddEdge(11, 9)
	truth, _ := eval.Data(g, q)
	if eval.SameResult(before, truth) {
		t.Fatal("edge addition should change the result set")
	}
	stale, _ := a.Eval(q)
	if eval.SameResult(stale, truth) {
		t.Fatal("expected the un-rebuilt APEX to be stale (it has no update algorithm)")
	}
	fresh, err := a.Rebuild(l)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := fresh.Eval(q)
	if !eval.SameResult(got, truth) {
		t.Errorf("rebuilt APEX: %v != %v", got, truth)
	}
}

func TestRandomizedAgainstTruthOnWarmLoad(t *testing.T) {
	g := datagen.MustGraph(datagen.XMark(datagen.XMarkScale(0.02)))
	w, err := workload.Generate(g, workload.Config{N: 40, MinLen: 2, MaxLen: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rec := workload.NewRecorder()
	rng := rand.New(rand.NewSource(1))
	for _, q := range w.Queries {
		for i := 0; i <= rng.Intn(4); i++ {
			rec.Record(q)
		}
	}
	a, err := Build(g, rec.Load(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.StoredNodes() == 0 {
		t.Fatal("no extents stored")
	}
	for _, q := range w.Queries {
		res, _ := a.Eval(q)
		truth, _ := eval.Data(g, q)
		if !eval.SameResult(res, truth) {
			t.Fatalf("query %s: %v != %v", q.Format(g.Labels()), res, truth)
		}
	}
}
