// Package apex implements a simplified APEX index (Chung, Min, Shim —
// SIGMOD 2002), the workload-aware competitor the paper's related work
// contrasts the D(k)-index against. APEX maintains dedicated extents for
// *frequently used* label paths, organized as a trie over reversed paths, so
// hot queries resolve by a hash walk; queries outside the frequent set fall
// back to partial matching plus validation.
//
// The paper's criticism — "no algorithm was provided to update APEX due to
// the change of the source data" — is reproduced faithfully: this APEX must
// be rebuilt after data changes, which is exactly what the comparison
// experiment measures against the D(k)-index's incremental algorithms.
package apex

import (
	"fmt"
	"slices"
	"sort"

	"dkindex/internal/eval"
	"dkindex/internal/graph"
	"dkindex/internal/workload"
)

// APEX is the frequent-path index: a trie keyed by query suffixes in reverse
// (last label first), each trie node holding the extent of data nodes the
// path ends at.
type APEX struct {
	data *graph.Graph
	root *trieNode
	// size is the total number of trie nodes with extents (the structure's
	// size metric, comparable to index-node counts).
	size int
	// minSupport is the frequency threshold paths needed to be indexed.
	minSupport int
}

type trieNode struct {
	children map[graph.LabelID]*trieNode
	// extent holds the nodes matched by the reversed path from the trie
	// root to here; nil for intermediate nodes that are not themselves
	// frequent paths.
	extent []graph.NodeID
	// depth is the number of labels on the path to this node.
	depth int
}

// Build constructs the APEX for the observed load: every distinct query
// (and, transitively, every suffix of it) whose total frequency reaches
// minSupport gets a dedicated extent, computed once against the data graph.
func Build(g *graph.Graph, load []workload.WeightedQuery, minSupport int) (*APEX, error) {
	if minSupport <= 0 {
		minSupport = 1
	}
	if len(load) == 0 {
		return nil, fmt.Errorf("apex: empty load")
	}
	// Frequency of every suffix across the load: a query contributes its
	// count to each of its suffixes (the trie resolves queries by longest
	// indexed suffix, so suffix support is what matters).
	type key string
	freq := make(map[key]int)
	suffixes := make(map[key]eval.Query)
	for _, wq := range load {
		for s := 0; s < len(wq.Q); s++ {
			suf := wq.Q[s:]
			k := key(encode(suf))
			freq[k] += wq.Count
			if _, ok := suffixes[k]; !ok {
				suffixes[k] = append(eval.Query(nil), suf...)
			}
		}
	}

	a := &APEX{
		data:       g,
		root:       &trieNode{children: make(map[graph.LabelID]*trieNode)},
		minSupport: minSupport,
	}
	// Deterministic insertion order.
	keys := make([]string, 0, len(freq))
	for k := range freq {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	for _, k := range keys {
		if freq[key(k)] < minSupport {
			continue
		}
		q := suffixes[key(k)]
		ext := g.EvalLabelPath(q, nil)
		a.insert(q, ext)
	}
	if a.size == 0 {
		return nil, fmt.Errorf("apex: no path reached support %d", minSupport)
	}
	return a, nil
}

func encode(q eval.Query) string {
	b := make([]byte, 0, len(q)*4)
	for _, l := range q {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

// insert stores the extent for q, walking the trie by reversed labels.
func (a *APEX) insert(q eval.Query, ext []graph.NodeID) {
	cur := a.root
	for i := len(q) - 1; i >= 0; i-- {
		l := q[i]
		next, ok := cur.children[l]
		if !ok {
			next = &trieNode{children: make(map[graph.LabelID]*trieNode), depth: cur.depth + 1}
			cur.children[l] = next
		}
		cur = next
	}
	if cur.extent == nil {
		a.size++
	}
	cur.extent = ext
}

// Size returns the number of indexed paths (trie nodes with extents).
func (a *APEX) Size() int { return a.size }

// StoredNodes returns the total extent storage (data-node references held).
func (a *APEX) StoredNodes() int {
	total := 0
	var walk func(n *trieNode)
	walk = func(n *trieNode) {
		total += len(n.extent)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(a.root)
	return total
}

// Eval answers q: it walks the trie by the query's reversed labels to the
// deepest indexed suffix. A full match returns the stored extent directly (a
// hash-walk hit, the APEX fast path). A partial match validates the stored
// extent against the whole query; no match falls back to direct evaluation.
// Costs follow the paper's model: trie hops count as index visits,
// validation and fallback charge data-node visits.
func (a *APEX) Eval(q eval.Query) ([]graph.NodeID, eval.Cost) {
	var cost eval.Cost
	cur := a.root
	var deepest *trieNode
	var deepestLen int
	for i := len(q) - 1; i >= 0; i-- {
		next, ok := cur.children[q[i]]
		if !ok {
			break
		}
		cost.IndexNodesVisited++
		cur = next
		if cur.extent != nil {
			deepest = cur
			deepestLen = len(q) - i
		}
	}
	switch {
	case deepest != nil && deepestLen == len(q):
		// Exact hit: the whole query is an indexed path.
		out := append([]graph.NodeID(nil), deepest.extent...)
		return out, cost
	case deepest != nil:
		// Suffix hit: candidates are right, prefix must be validated.
		cost.Validations++
		var out []graph.NodeID
		for _, d := range deepest.extent {
			if a.data.LabelPathMatchesNode(q, d, func(graph.NodeID) { cost.DataNodesValidated++ }) {
				out = append(out, d)
			}
		}
		slices.Sort(out)
		return out, cost
	default:
		// Cold query: full scan of the data graph.
		cost.Validations++
		res := a.data.EvalLabelPath(q, func(graph.NodeID) { cost.DataNodesValidated++ })
		return res, cost
	}
}

// Rebuild reconstructs the APEX against the (presumably mutated) data graph
// with the same load and support — the only update mechanism the original
// proposal provides for data changes.
func (a *APEX) Rebuild(load []workload.WeightedQuery) (*APEX, error) {
	return Build(a.data, load, a.minSupport)
}
