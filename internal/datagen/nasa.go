package datagen

import "dkindex/internal/xmlgraph"

// NASADTD models the structure of nasa.dtd, the markup language of the
// astronomical data center at NASA/GSFC that the paper's second dataset is
// generated from. The paper used the IBM XML generator over the real DTD and
// kept 8 of its 20 ID/IDREF references to keep the index manageable; this
// transcription preserves the properties the experiments rely on — a
// broader, deeper and less regular structure than XMark, with exactly 8
// reference kinds (marked Refs below).
func NASADTD() *DTD {
	return &DTD{
		Root: "datasets",
		Elements: map[string]*ElementDef{
			"datasets": {Particles: []Particle{plus("dataset", 1<<20)}},
			"dataset": {
				HasID: true,
				Particles: []Particle{
					one("subject"),
					one("title"),
					star("altname", 3),
					one("abstract"),
					opt("keywords"),
					plus("author", 4),
					opt("holdings"),
					one("identifier"),
					opt("date"),
					opt("journal"),
					opt("descriptions"),
					opt("tableHead"),
					opt("history"),
					plus("reference", 6),
					plus("seealso", 4),
					opt("instrument"),
					opt("observatory"),
					opt("coverage"),
				},
			},
			"subject":     leaf(),
			"title":       leaf(),
			"altname":     leaf(),
			"identifier":  leaf(),
			"abstract":    seq(plus("para", 3)),
			"para":        seq(star("footnote", 2)),
			"footnote":    seq(opt("source")),
			"keywords":    seq(plus("keyword", 5)),
			"instrument":  seq(one("instname"), opt("telescope"), star("detector", 2)),
			"instname":    leaf(),
			"telescope":   seq(opt("aperture")),
			"aperture":    leaf(),
			"detector":    seq(opt("waveband")),
			"waveband":    leaf(),
			"observatory": seq(one("obsname"), opt("location"), opt("operator")),
			"obsname":     leaf(),
			"location":    seq(opt("latitude"), opt("longitude"), opt("altitude")),
			"latitude":    leaf(),
			"longitude":   leaf(),
			"altitude":    leaf(),
			"operator":    leaf(),
			"coverage":    seq(opt("spatial"), opt("temporal"), opt("spectral")),
			"spatial":     seq(opt("region")),
			"region":      leaf(),
			"temporal":    seq(opt("startTime"), opt("stopTime")),
			"startTime":   leaf(),
			"stopTime":    leaf(),
			"spectral":    leaf(),
			"keyword": {
				HasID: true,
				Particles: []Particle{
					// Related keyword: reference 1.
					plus("relatedkw", 3),
				},
			},
			"relatedkw": {Refs: []Ref{{Attr: "keywordref", Target: "keyword"}}},
			"author": {
				HasID: true,
				Particles: []Particle{
					opt("initial"),
					one("lastname"),
					opt("affiliation"),
				},
			},
			"initial":     leaf(),
			"lastname":    leaf(),
			"affiliation": leaf(),
			"holdings":    seq(star("resource", 3)),
			"resource":    seq(opt("media"), opt("size")),
			"media":       leaf(),
			"size":        leaf(),
			"date":        seq(opt("year"), opt("month"), opt("day")),
			"year":        leaf(),
			"month":       leaf(),
			"day":         leaf(),
			"journal": {
				Particles: []Particle{
					one("name"),
					star("journalauthor", 3),
					opt("volume"),
					opt("pages"),
				},
			},
			"name":   leaf(),
			"volume": leaf(),
			"pages":  leaf(),
			// Journal author cites a dataset author: reference 2.
			"journalauthor": {Refs: []Ref{{Attr: "authorref", Target: "author"}}},
			"descriptions":  seq(plus("description", 3)),
			"description":   seq(plus("detail", 2), opt("contributor")),
			"detail":        seq(star("para", 3)),
			// Contributor points at an author: reference 3.
			"contributor": {Refs: []Ref{{Attr: "authorref", Target: "author"}}},
			"tableHead":   seq(plus("tableLink", 3), star("field", 4)),
			// Table links cite other datasets: reference 4.
			"tableLink":  {Refs: []Ref{{Attr: "datasetref", Target: "dataset"}}},
			"field":      seq(opt("definition")),
			"definition": seq(star("para", 2)),
			"history":    seq(plus("revision", 4), opt("ingest"), opt("checksum")),
			"ingest":     seq(opt("ingestDate")),
			"ingestDate": leaf(),
			"checksum":   leaf(),
			"revision": {
				HasID: true,
				Particles: []Particle{
					star("basedon", 2),
				},
			},
			// Revision lineage: reference 5.
			"basedon": {Refs: []Ref{{Attr: "revisionref", Target: "revision"}}},
			"reference": {
				Particles: []Particle{one("source")},
				// Bibliographic citation of another dataset: reference 6.
				Refs: []Ref{{Attr: "datasetref", Target: "dataset"}},
			},
			"source": {
				Choice: true,
				Particles: []Particle{
					one("journal"),
					one("book"),
					one("other"),
				},
			},
			"book": seq(one("title"), star("journalauthor", 2)),
			"other": {
				// Free citation with a keyword link: reference 7.
				Refs: []Ref{{Attr: "keywordref", Target: "keyword", Prob: 0.8}},
			},
			// See-also between datasets: reference 8.
			"seealso": {Refs: []Ref{{Attr: "datasetref", Target: "dataset"}}},
		},
	}
}

// NASAConfig scales the NASA-like document.
type NASAConfig struct {
	Seed        int64
	TargetNodes int
}

// NASAScale returns a config producing roughly scale * 100_000 element
// nodes (the paper's 15 MB file is about scale 1.5 here).
func NASAScale(scale float64) NASAConfig {
	if scale <= 0 {
		scale = 0.01
	}
	return NASAConfig{Seed: 2, TargetNodes: int(scale * 100_000)}
}

// NASA generates the NASA-like astronomical metadata document.
func NASA(cfg NASAConfig) *xmlgraph.Elem {
	doc, err := Generate(NASADTD(), GenConfig{
		Seed:        cfg.Seed,
		TargetNodes: cfg.TargetNodes,
		MaxDepth:    14,
	})
	if err != nil {
		// NASADTD is a fixed, validated model; failure is a programming error.
		panic(err)
	}
	return doc
}
