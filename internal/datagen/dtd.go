package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"dkindex/internal/xmlgraph"
)

// Cardinality is a DTD content-particle cardinality.
type Cardinality int

// DTD cardinalities.
const (
	One  Cardinality = iota // exactly one
	Opt                     // ? — zero or one
	Star                    // * — zero or more
	Plus                    // + — one or more
)

// Particle is one child slot in an element's content model.
type Particle struct {
	Child string
	Card  Cardinality
	// MaxRepeat caps Star/Plus expansion (default 3).
	MaxRepeat int
}

// Ref declares a reference attribute the generator emits: Attr receives the
// id of a randomly chosen generated element of type Target. Names should end
// in "ref" so the default loader heuristic resolves them.
type Ref struct {
	Attr   string
	Target string
	// Prob is the emission probability (default 1.0).
	Prob float64
}

// ElementDef is the content model of one element type.
type ElementDef struct {
	// HasID makes generated instances carry an id attribute so they can be
	// reference targets.
	HasID bool
	// Choice selects exactly one particle instead of emitting the sequence.
	Choice bool
	// Particles is the content model (a sequence, or alternatives when
	// Choice is set).
	Particles []Particle
	// Refs are reference attributes to emit.
	Refs []Ref
}

// DTD is a document type definition: a root element and a content model per
// element type.
type DTD struct {
	Root     string
	Elements map[string]*ElementDef
}

// Validate checks that every particle and reference target is defined.
func (d *DTD) Validate() error {
	if _, ok := d.Elements[d.Root]; !ok {
		return fmt.Errorf("datagen: root element %q undefined", d.Root)
	}
	for name, def := range d.Elements {
		for _, p := range def.Particles {
			if _, ok := d.Elements[p.Child]; !ok {
				return fmt.Errorf("datagen: element %q references undefined child %q", name, p.Child)
			}
		}
		for _, r := range def.Refs {
			if _, ok := d.Elements[r.Target]; !ok {
				return fmt.Errorf("datagen: element %q references undefined ref target %q", name, r.Target)
			}
		}
		if def.Choice && len(def.Particles) == 0 {
			return fmt.Errorf("datagen: element %q is a choice with no alternatives", name)
		}
	}
	return nil
}

// GenConfig controls DTD-driven generation.
type GenConfig struct {
	Seed int64
	// TargetNodes stops optional expansion once the document reaches this
	// size; mandatory content still completes. Zero means 10_000.
	TargetNodes int
	// MaxDepth suppresses optional content below this depth to keep
	// recursive models finite. Zero means 12.
	MaxDepth int
}

// hardDepthCap aborts generation of DTDs whose *mandatory* content recurses
// unboundedly.
const hardDepthCap = 64

// Generate produces a random document conforming to the DTD. Generation is
// deterministic for a given seed. References are wired in a second pass so
// they may point anywhere in the document, including forward.
func Generate(d *DTD, cfg GenConfig) (*xmlgraph.Elem, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if cfg.TargetNodes == 0 {
		cfg.TargetNodes = 10_000
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 12
	}
	g := &dtdGen{
		dtd:    d,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		ids:    make(map[string][]string),
		nextID: make(map[string]int),
	}
	root, err := g.emit(d.Root, 0)
	if err != nil {
		return nil, err
	}
	g.wireRefs()
	return root, nil
}

type dtdGen struct {
	dtd   *DTD
	cfg   GenConfig
	rng   *rand.Rand
	nodes int
	// ids collects generated ids per element type; nextID numbers them.
	ids    map[string][]string
	nextID map[string]int
	// pending reference attributes to wire once all ids exist.
	pending []pendingRef
}

type pendingRef struct {
	elem   *xmlgraph.Elem
	attr   string
	target string
}

func (g *dtdGen) emit(name string, depth int) (*xmlgraph.Elem, error) {
	if depth > hardDepthCap {
		return nil, fmt.Errorf("datagen: mandatory content of %q recurses past depth %d", name, hardDepthCap)
	}
	def := g.dtd.Elements[name]
	e := xmlgraph.NewElem(name)
	g.nodes++
	if def.HasID {
		id := fmt.Sprintf("%s%d", name, g.nextID[name])
		g.nextID[name]++
		g.ids[name] = append(g.ids[name], id)
		e.Attr("id", id)
	}
	for _, r := range def.Refs {
		prob := r.Prob
		if prob == 0 {
			prob = 1
		}
		if g.rng.Float64() <= prob {
			g.pending = append(g.pending, pendingRef{elem: e, attr: r.Attr, target: r.Target})
		}
	}

	budgetLeft := g.nodes < g.cfg.TargetNodes && depth < g.cfg.MaxDepth
	particles := def.Particles
	if def.Choice && len(particles) > 0 {
		particles = []Particle{particles[g.rng.Intn(len(particles))]}
	}
	for _, p := range particles {
		count := 0
		switch p.Card {
		case One:
			count = 1
		case Opt:
			if budgetLeft && g.rng.Intn(2) == 0 {
				count = 1
			}
		case Plus, Star:
			max := p.MaxRepeat
			if max == 0 {
				max = 3
			}
			min := 0
			if p.Card == Plus {
				min = 1
			}
			switch {
			case !budgetLeft:
				count = min
			case max >= 100:
				// Wide repetitions (document-level lists) are budget-driven:
				// the emission loop below stops when the target is reached.
				count = max
			default:
				count = pick(g.rng, min, max)
			}
		}
		minCount := 0
		if p.Card == One || p.Card == Plus {
			minCount = 1
		}
		for i := 0; i < count; i++ {
			if i >= minCount && g.nodes >= g.cfg.TargetNodes {
				break
			}
			c, err := g.emit(p.Child, depth+1)
			if err != nil {
				return nil, err
			}
			e.Append(c)
		}
	}
	return e, nil
}

// wireRefs assigns each pending reference a random id of its target type.
// References whose target type was never generated are dropped.
func (g *dtdGen) wireRefs() {
	// Deterministic order regardless of map iteration: pending is already
	// in generation order.
	for _, p := range g.pending {
		ids := g.ids[p.target]
		if len(ids) == 0 {
			continue
		}
		p.elem.Attr(p.attr, ids[g.rng.Intn(len(ids))])
	}
}

// leaf is a convenience for DTD literals: an element with no content.
func leaf() *ElementDef { return &ElementDef{} }

// seq builds a sequence content model.
func seq(ps ...Particle) *ElementDef { return &ElementDef{Particles: ps} }

// one/opt/star/plus build particles.
func one(child string) Particle           { return Particle{Child: child, Card: One} }
func opt(child string) Particle           { return Particle{Child: child, Card: Opt} }
func star(child string, max int) Particle { return Particle{Child: child, Card: Star, MaxRepeat: max} }
func plus(child string, max int) Particle { return Particle{Child: child, Card: Plus, MaxRepeat: max} }

// ElementNames returns the defined element names, sorted; for reports.
func (d *DTD) ElementNames() []string {
	out := make([]string, 0, len(d.Elements))
	for n := range d.Elements {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
