package datagen

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dkindex/internal/graph"
	"dkindex/internal/xmlgraph"
)

func TestXMarkDeterministic(t *testing.T) {
	cfg := XMarkScale(0.02)
	a := XMark(cfg)
	b := XMark(cfg)
	var ba, bb bytes.Buffer
	if err := a.WriteXML(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteXML(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("XMark generation is not deterministic")
	}
}

func TestXMarkScaleApproximation(t *testing.T) {
	doc := XMark(XMarkScale(0.05))
	n := doc.CountNodes()
	if n < 2500 || n > 10000 {
		t.Errorf("scale 0.05 produced %d nodes, want roughly 5000", n)
	}
	big := XMark(XMarkScale(0.1)).CountNodes()
	if big <= n {
		t.Error("larger scale did not produce a larger document")
	}
}

func TestXMarkGraphPipeline(t *testing.T) {
	g, rep, err := Graph(XMark(XMarkScale(0.02)))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.DanglingRefs) != 0 {
		t.Errorf("%d dangling references", len(rep.DanglingRefs))
	}
	if rep.ReferenceEdges == 0 {
		t.Error("no reference edges resolved")
	}
	// The characteristic reference paths must exist.
	for _, path := range [][]string{
		{"item", "incategory", "category"},
		{"open_auction", "itemref", "item"},
		{"closed_auction", "seller", "person"},
		{"person", "watches", "watch", "open_auction"},
	} {
		q := make([]graph.LabelID, len(path))
		for i, l := range path {
			q[i] = g.Labels().Lookup(l)
			if q[i] == graph.InvalidLabel {
				t.Fatalf("label %s missing from XMark data", l)
			}
		}
		if res := g.EvalLabelPath(q, nil); len(res) == 0 {
			t.Errorf("path %v has no matches", path)
		}
	}
}

func TestXMarkIsGraphNotTree(t *testing.T) {
	g, _, err := Graph(XMark(XMarkScale(0.02)))
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for n := 0; n < g.NumNodes(); n++ {
		if g.InDegree(graph.NodeID(n)) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no node has multiple parents; reference edges missing")
	}
}

func TestNASADTDValid(t *testing.T) {
	if err := NASADTD().Validate(); err != nil {
		t.Fatal(err)
	}
	if len(NASADTD().ElementNames()) < 30 {
		t.Errorf("NASA DTD has only %d element types", len(NASADTD().ElementNames()))
	}
}

func TestNASAGeneration(t *testing.T) {
	doc := NASA(NASAConfig{Seed: 7, TargetNodes: 5000})
	n := doc.CountNodes()
	if n < 4000 || n > 12000 {
		t.Errorf("target 5000 produced %d nodes", n)
	}
	g, rep, err := Graph(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.ReferenceEdges == 0 {
		t.Error("NASA data has no reference edges")
	}
	if len(rep.DanglingRefs) != 0 {
		t.Errorf("dangling refs: %v", rep.DanglingRefs[:min(3, len(rep.DanglingRefs))])
	}
}

func TestNASABroaderAndDeeperThanXMark(t *testing.T) {
	// The paper chose NASA because it is broader, deeper and less regular
	// than XMark with more references; verify the generators preserve that.
	xg, xrep, err := Graph(XMark(XMarkScale(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	ng, nrep, err := Graph(NASA(NASAConfig{Seed: 2, TargetNodes: xg.NumNodes()}))
	if err != nil {
		t.Fatal(err)
	}
	xs, ns := xg.ComputeStats(), ng.ComputeStats()
	if ns.MaxDepth <= xs.MaxDepth {
		t.Errorf("NASA depth %d not deeper than XMark %d", ns.MaxDepth, xs.MaxDepth)
	}
	if ns.Labels <= xs.Labels {
		t.Errorf("NASA labels %d not broader than XMark %d", ns.Labels, xs.Labels)
	}
	xRefRate := float64(xrep.ReferenceEdges) / float64(xg.NumNodes())
	nRefRate := float64(nrep.ReferenceEdges) / float64(ng.NumNodes())
	if nRefRate <= xRefRate {
		t.Errorf("NASA reference rate %.4f not higher than XMark %.4f", nRefRate, xRefRate)
	}
}

func TestDTDValidationErrors(t *testing.T) {
	bad := &DTD{Root: "missing", Elements: map[string]*ElementDef{}}
	if err := bad.Validate(); err == nil {
		t.Error("undefined root accepted")
	}
	bad = &DTD{Root: "a", Elements: map[string]*ElementDef{
		"a": seq(one("ghost")),
	}}
	if err := bad.Validate(); err == nil {
		t.Error("undefined child accepted")
	}
	bad = &DTD{Root: "a", Elements: map[string]*ElementDef{
		"a": {Refs: []Ref{{Attr: "xref", Target: "ghost"}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("undefined ref target accepted")
	}
	bad = &DTD{Root: "a", Elements: map[string]*ElementDef{
		"a": {Choice: true},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("empty choice accepted")
	}
}

func TestGenerateMandatoryRecursionFails(t *testing.T) {
	d := &DTD{Root: "a", Elements: map[string]*ElementDef{
		"a": seq(one("a")),
	}}
	if _, err := Generate(d, GenConfig{Seed: 1}); err == nil {
		t.Error("unbounded mandatory recursion accepted")
	}
}

func TestGenerateRespectsBudget(t *testing.T) {
	d := &DTD{Root: "list", Elements: map[string]*ElementDef{
		"list":  seq(plus("entry", 1<<20)),
		"entry": seq(star("sub", 2)),
		"sub":   leaf(),
	}}
	doc, err := Generate(d, GenConfig{Seed: 3, TargetNodes: 500})
	if err != nil {
		t.Fatal(err)
	}
	n := doc.CountNodes()
	if n < 400 || n > 1200 {
		t.Errorf("budget 500 produced %d nodes", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 5, TargetNodes: 2000}
	var a, b bytes.Buffer
	docA, err := Generate(NASADTD(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	docB, err := Generate(NASADTD(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := docA.WriteXML(&a); err != nil {
		t.Fatal(err)
	}
	if err := docB.WriteXML(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("DTD generation is not deterministic")
	}
}

func TestPickBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		v := pick(rng, 1, 4)
		if v < 1 || v > 4 {
			t.Fatalf("pick out of bounds: %d", v)
		}
	}
	if pick(rng, 3, 3) != 3 {
		t.Error("degenerate pick wrong")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDBLPDTDValid(t *testing.T) {
	if err := DBLPDTD().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDBLPGeneration(t *testing.T) {
	g, rep, err := Graph(DBLP(DBLPConfig{Seed: 5, TargetNodes: 4000}))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.DanglingRefs) != 0 {
		t.Errorf("dangling refs: %d", len(rep.DanglingRefs))
	}
	// DBLP is the citation-dense regime: reference rate above both XMark
	// and NASA.
	xg, xrep, err := Graph(XMark(XMarkScale(0.04)))
	if err != nil {
		t.Fatal(err)
	}
	dRate := float64(rep.ReferenceEdges) / float64(g.NumNodes())
	xRate := float64(xrep.ReferenceEdges) / float64(xg.NumNodes())
	if dRate <= xRate {
		t.Errorf("DBLP ref rate %.4f not above XMark %.4f", dRate, xRate)
	}
	// And the shallow regime: depth below NASA's.
	if g.ComputeStats().MaxDepth > 6 {
		t.Errorf("DBLP depth %d, want shallow (<=6)", g.ComputeStats().MaxDepth)
	}
	// Citation paths resolve.
	q := []graph.LabelID{
		g.Labels().Lookup("cite"),
		g.Labels().Lookup("article"),
	}
	if q[0] == graph.InvalidLabel || q[1] == graph.InvalidLabel {
		t.Fatal("cite/article labels missing")
	}
	if res := g.EvalLabelPath(q, nil); len(res) == 0 {
		t.Error("no cite->article paths")
	}
}

// Property: every generator configuration yields a well-formed document that
// loads into a valid graph with no dangling references.
func TestQuickGeneratorsAlwaysLoad(t *testing.T) {
	f := func(seed int64, which uint8, sz uint8) bool {
		target := 300 + int(sz)*8
		var doc *xmlgraph.Elem
		switch which % 3 {
		case 0:
			cfg := XMarkScale(float64(target) / 100_000)
			cfg.Seed = seed
			doc = XMark(cfg)
		case 1:
			doc = NASA(NASAConfig{Seed: seed, TargetNodes: target})
		default:
			doc = DBLP(DBLPConfig{Seed: seed, TargetNodes: target})
		}
		g, rep, err := Graph(doc)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		return len(rep.DanglingRefs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
