package datagen

import "dkindex/internal/xmlgraph"

// DBLPDTD models a DBLP-style bibliography: a flat, wide collection of
// publication records whose cite/crossref attributes make the reference
// structure far denser than either of the paper's datasets. It exercises a
// third structural regime — shallow but heavily cross-linked — where
// backward-bisimulation classes fragment through citations rather than
// nesting.
func DBLPDTD() *DTD {
	return &DTD{
		Root: "dblp",
		Elements: map[string]*ElementDef{
			"dblp": {Particles: []Particle{
				plus("article", 1<<20),
				plus("inproceedings", 1<<20),
				star("proceedings", 1<<20),
				star("www", 200),
			}},
			"article": {
				HasID: true,
				Particles: []Particle{
					plus("author", 5),
					one("title"),
					opt("pages"),
					one("year"),
					opt("volume"),
					opt("journal"),
					opt("number"),
					opt("url"),
					plus("cite", 8),
				},
			},
			"inproceedings": {
				HasID: true,
				Particles: []Particle{
					plus("author", 6),
					one("title"),
					opt("pages"),
					one("year"),
					opt("booktitle"),
					opt("url"),
					plus("cite", 10),
					opt("crossref"),
				},
			},
			"proceedings": {
				HasID: true,
				Particles: []Particle{
					plus("editor", 3),
					one("title"),
					opt("publisher"),
					one("year"),
					opt("isbn"),
					opt("url"),
				},
			},
			"www": {
				HasID: true,
				Particles: []Particle{
					plus("author", 3),
					one("title"),
					opt("url"),
				},
			},
			"author":    leaf(),
			"editor":    leaf(),
			"title":     leaf(),
			"pages":     leaf(),
			"year":      leaf(),
			"volume":    leaf(),
			"journal":   leaf(),
			"number":    leaf(),
			"url":       leaf(),
			"booktitle": leaf(),
			"publisher": leaf(),
			"isbn":      leaf(),
			// Citations point at other publications; crossrefs at proceedings.
			"cite": {Refs: []Ref{
				{Attr: "articleref", Target: "article", Prob: 0.7},
				{Attr: "paperref", Target: "inproceedings", Prob: 0.7},
			}},
			"crossref": {Refs: []Ref{{Attr: "proceedingsref", Target: "proceedings"}}},
		},
	}
}

// DBLPConfig scales the bibliography.
type DBLPConfig struct {
	Seed        int64
	TargetNodes int
}

// DBLPScale returns a config producing roughly scale * 100_000 element nodes.
func DBLPScale(scale float64) DBLPConfig {
	if scale <= 0 {
		scale = 0.01
	}
	return DBLPConfig{Seed: 3, TargetNodes: int(scale * 100_000)}
}

// DBLP generates the bibliography document.
func DBLP(cfg DBLPConfig) *xmlgraph.Elem {
	doc, err := Generate(DBLPDTD(), GenConfig{
		Seed:        cfg.Seed,
		TargetNodes: cfg.TargetNodes,
		MaxDepth:    6,
	})
	if err != nil {
		// DBLPDTD is a fixed, validated model; failure is a programming error.
		panic(err)
	}
	return doc
}
