package datagen

import (
	"fmt"
	"math/rand"

	"dkindex/internal/xmlgraph"
)

// XMarkConfig scales the auction-site document. Counts are totals across
// the whole site.
type XMarkConfig struct {
	Seed           int64
	Categories     int
	Items          int
	People         int
	OpenAuctions   int
	ClosedAuctions int
}

// XMarkScale returns a config sized so the resulting document has roughly
// scale * 100_000 element nodes, mirroring XMark's single scale factor (the
// paper's 10 MB file is about scale 1 here).
func XMarkScale(scale float64) XMarkConfig {
	if scale <= 0 {
		scale = 0.01
	}
	f := func(n float64) int {
		v := int(n * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	return XMarkConfig{
		Seed:           1,
		Categories:     f(100),
		Items:          f(2175),
		People:         f(2550),
		OpenAuctions:   f(1200),
		ClosedAuctions: f(975),
	}
}

var xmarkRegions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

// XMark generates the auction-site document: the structural skeleton of the
// XMark benchmark (site / regions / categories / people / open_auctions /
// closed_auctions) with its characteristic reference edges — items belong to
// categories, auctions reference items and people, people watch auctions and
// declare category interests.
func XMark(cfg XMarkConfig) *xmlgraph.Elem {
	rng := rand.New(rand.NewSource(cfg.Seed))
	site := xmlgraph.NewElem("site")

	// Categories.
	categories := site.Child("categories")
	for i := 0; i < cfg.Categories; i++ {
		c := categories.Child("category")
		c.Attr("id", catID(i))
		c.Child("name")
		desc := c.Child("description")
		for j := pick(rng, 1, 3); j > 0; j-- {
			desc.Child("text")
		}
	}
	catgraph := site.Child("catgraph")
	for i := 0; i < cfg.Categories; i++ {
		e := catgraph.Child("edge")
		e.Attr("fromref", catID(rng.Intn(cfg.Categories)))
		e.Attr("toref", catID(rng.Intn(cfg.Categories)))
	}

	// Regions and items.
	regions := site.Child("regions")
	regionElems := make([]*xmlgraph.Elem, len(xmarkRegions))
	for i, r := range xmarkRegions {
		regionElems[i] = regions.Child(r)
	}
	for i := 0; i < cfg.Items; i++ {
		item := regionElems[rng.Intn(len(regionElems))].Child("item")
		item.Attr("id", itemID(i))
		item.Child("location")
		item.Child("quantity")
		item.Child("name")
		item.Child("payment")
		desc := item.Child("description")
		for j := pick(rng, 1, 3); j > 0; j-- {
			desc.Child("text")
		}
		if rng.Intn(2) == 0 {
			item.Child("shipping")
		}
		for j := pick(rng, 1, 2); j > 0; j-- {
			inc := item.Child("incategory")
			inc.Attr("categoryref", catID(rng.Intn(cfg.Categories)))
		}
		if rng.Intn(3) == 0 {
			mb := item.Child("mailbox")
			for j := pick(rng, 1, 3); j > 0; j-- {
				mail := mb.Child("mail")
				mail.Child("from")
				mail.Child("to")
				mail.Child("date")
				mail.Child("text")
			}
		}
	}

	// People.
	people := site.Child("people")
	for i := 0; i < cfg.People; i++ {
		p := people.Child("person")
		p.Attr("id", personID(i))
		p.Child("name")
		p.Child("emailaddress")
		if rng.Intn(2) == 0 {
			p.Child("phone")
		}
		if rng.Intn(2) == 0 {
			addr := p.Child("address")
			addr.Child("street")
			addr.Child("city")
			addr.Child("country")
			addr.Child("zipcode")
		}
		if rng.Intn(3) != 0 {
			prof := p.Child("profile")
			for j := pick(rng, 0, 3); j > 0; j-- {
				in := prof.Child("interest")
				in.Attr("categoryref", catID(rng.Intn(cfg.Categories)))
			}
			if rng.Intn(2) == 0 {
				prof.Child("education")
			}
			if rng.Intn(2) == 0 {
				prof.Child("business")
			}
		}
		if cfg.OpenAuctions > 0 && rng.Intn(3) == 0 {
			w := p.Child("watches")
			for j := pick(rng, 1, 3); j > 0; j-- {
				watch := w.Child("watch")
				watch.Attr("auctionref", openAuctionID(rng.Intn(cfg.OpenAuctions)))
			}
		}
	}

	// Open auctions.
	open := site.Child("open_auctions")
	for i := 0; i < cfg.OpenAuctions; i++ {
		a := open.Child("open_auction")
		a.Attr("id", openAuctionID(i))
		a.Child("initial")
		if rng.Intn(2) == 0 {
			a.Child("reserve")
		}
		for j := pick(rng, 0, 4); j > 0; j-- {
			b := a.Child("bidder")
			b.Child("date")
			b.Child("increase")
			b.Attr("personref", personID(rng.Intn(cfg.People)))
		}
		a.Child("current")
		it := a.Child("itemref")
		it.Attr("itemref", itemID(rng.Intn(cfg.Items)))
		seller := a.Child("seller")
		seller.Attr("personref", personID(rng.Intn(cfg.People)))
		ann := a.Child("annotation")
		author := ann.Child("author")
		author.Attr("personref", personID(rng.Intn(cfg.People)))
		ann.Child("description")
		a.Child("quantity")
		a.Child("type")
		iv := a.Child("interval")
		iv.Child("start")
		iv.Child("end")
	}

	// Closed auctions.
	closed := site.Child("closed_auctions")
	for i := 0; i < cfg.ClosedAuctions; i++ {
		a := closed.Child("closed_auction")
		seller := a.Child("seller")
		seller.Attr("personref", personID(rng.Intn(cfg.People)))
		buyer := a.Child("buyer")
		buyer.Attr("personref", personID(rng.Intn(cfg.People)))
		it := a.Child("itemref")
		it.Attr("itemref", itemID(rng.Intn(cfg.Items)))
		a.Child("price")
		a.Child("date")
		a.Child("quantity")
		a.Child("type")
		if rng.Intn(2) == 0 {
			ann := a.Child("annotation")
			author := ann.Child("author")
			author.Attr("personref", personID(rng.Intn(cfg.People)))
			ann.Child("description")
		}
	}

	return site
}

func catID(i int) string         { return fmt.Sprintf("category%d", i) }
func itemID(i int) string        { return fmt.Sprintf("item%d", i) }
func personID(i int) string      { return fmt.Sprintf("person%d", i) }
func openAuctionID(i int) string { return fmt.Sprintf("open_auction%d", i) }
