// Package datagen generates the synthetic datasets of the paper's evaluation
// (Section 6):
//
//   - an XMark-like auction-site document (the paper used the XMark
//     benchmark generator at about 10 MB) — regular, moderately deep
//     structure with itemref/personref/categoryref reference edges;
//   - a NASA-like astronomical-metadata document (the paper used the IBM
//     XML generator with nasa.dtd at about 15 MB, keeping 8 of the 20
//     references) — broader, deeper, more irregular structure with more
//     references, produced by a generic DTD-driven generator.
//
// Both generators are deterministic for a given seed and emit
// xmlgraph.Elem trees; Graph serializes and re-parses them through the
// xmlgraph loader so the whole pipeline of a real deployment is exercised.
package datagen

import (
	"bytes"
	"fmt"
	"math/rand"

	"dkindex/internal/graph"
	"dkindex/internal/xmlgraph"
)

// Graph serializes the document and parses it back into a data graph using
// loader options that resolve the generators' reference attributes.
func Graph(doc *xmlgraph.Elem) (*graph.Graph, *xmlgraph.Report, error) {
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		return nil, nil, fmt.Errorf("datagen: serialize: %w", err)
	}
	return xmlgraph.Load(&buf, LoadOptions())
}

// MustGraph is Graph that panics on error; generator output is always
// well-formed, so failures indicate bugs.
func MustGraph(doc *xmlgraph.Elem) *graph.Graph {
	g, _, err := Graph(doc)
	if err != nil {
		panic(err)
	}
	return g
}

// LoadOptions returns xmlgraph options matching the generators' conventions:
// identity in id= attributes and references in *ref attributes (the loader's
// defaults cover both).
func LoadOptions() *xmlgraph.Options {
	return &xmlgraph.Options{}
}

// pick returns a geometric-ish small count in [min, max] biased toward the
// low end, the shape DTD star/plus expansions take in real documents.
func pick(rng *rand.Rand, min, max int) int {
	if max <= min {
		return min
	}
	n := min
	for n < max && rng.Intn(3) != 0 {
		n++
	}
	return n
}
