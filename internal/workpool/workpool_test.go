package workpool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestChunksCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1 << 12} {
		for _, workers := range []int{0, 1, 3, 8} {
			hits := make([]int32, n)
			var calls atomic.Int32
			Chunks(n, workers, func(w, lo, hi int) {
				calls.Add(1)
				if lo >= hi {
					t.Errorf("n=%d workers=%d: empty chunk [%d,%d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, workers, i, h)
				}
			}
			if n == 0 && calls.Load() != 0 {
				t.Fatalf("n=0 ran %d chunks", calls.Load())
			}
		}
	}
}

func TestChunksIndexMatchesBoundaries(t *testing.T) {
	n, workers := 100, 7
	chunk := (n + workers - 1) / workers
	var mu sync.Mutex
	seen := map[int][2]int{}
	Chunks(n, workers, func(w, lo, hi int) {
		mu.Lock()
		seen[w] = [2]int{lo, hi}
		mu.Unlock()
	})
	for w, b := range seen {
		if b[0] != w*chunk {
			t.Fatalf("chunk %d starts at %d, want %d", w, b[0], w*chunk)
		}
	}
}

func TestChunksBoundsConcurrency(t *testing.T) {
	limit := runtime.GOMAXPROCS(0)
	var cur, peak atomic.Int32
	Chunks(1<<10, 64, func(w, lo, hi int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if int(peak.Load()) > limit {
		t.Fatalf("observed %d concurrent chunks, budget %d", peak.Load(), limit)
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(10, 100, 0); w != 1 {
		t.Fatalf("tiny input should collapse to 1 worker, got %d", w)
	}
	if w := Workers(1<<20, 1, 4); w > 4 {
		t.Fatalf("max ignored: got %d", w)
	}
	if w := Workers(0, 0, 0); w != 1 {
		t.Fatalf("empty input: got %d workers", w)
	}
}
