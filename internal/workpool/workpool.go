// Package workpool provides the bounded worker pool shared by every CPU
// fan-out in the repository: the evaluators' parallel extent validation and
// the build pipeline's parallel refinement rounds both draw from one global
// concurrency budget, so a construction running concurrently with query
// traffic cannot oversubscribe the machine to 2x GOMAXPROCS.
//
// The pool is a semaphore, not a goroutine farm: Chunks spawns one goroutine
// per chunk but caps how many run at once across all concurrent callers.
// Callers choose their chunk boundaries — determinism contracts ("merge
// per-chunk results in chunk order") live with the caller; the pool only
// bounds parallelism. Chunk functions must not call back into the pool:
// nested fan-out could otherwise deadlock on the shared budget.
package workpool

import (
	"runtime"
	"sync"
)

// limit caps concurrently running chunks across all callers. GOMAXPROCS at
// init, floored at 1; tests may lower GOMAXPROCS afterwards — Workers
// re-reads it per call so chunk counts still honour the runtime setting.
var (
	sem     chan struct{}
	semOnce sync.Once
)

func acquire() {
	semOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 1 {
			n = 1
		}
		sem = make(chan struct{}, n)
	})
	sem <- struct{}{}
}

func release() { <-sem }

// Workers returns the fan-out width for n items with at least minPerWorker
// items per chunk: GOMAXPROCS capped at max, floored at 1. Callers use it to
// compute deterministic chunk boundaries before handing chunks to the pool.
func Workers(n, minPerWorker, max int) int {
	w := runtime.GOMAXPROCS(0)
	if max > 0 && w > max {
		w = max
	}
	if minPerWorker > 0 && n/minPerWorker < w {
		w = n / minPerWorker
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Chunks splits [0, n) into `workers` contiguous chunks of near-equal size
// and runs fn(w, lo, hi) for each, blocking until all complete. Chunk w
// covers [w*ceil(n/workers), min((w+1)*ceil(n/workers), n)); trailing empty
// chunks are skipped. With workers <= 1 (or n the size of one chunk) fn runs
// inline on the caller's goroutine, paying no synchronization at all.
func Chunks(n, workers int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	if workers == 1 || chunk >= n {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w, lo := 0, 0; lo < n; w, lo = w+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acquire()
			defer release()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
