package codec

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dkindex/internal/core"
	"dkindex/internal/datagen"
	"dkindex/internal/eval"
	"dkindex/internal/graph"
)

func buildSample(t *testing.T) *core.DK {
	t.Helper()
	g := datagen.MustGraph(datagen.XMark(datagen.XMarkScale(0.02)))
	reqs := core.ReqsFromNames(g.Labels(), map[string]int{"category": 3, "name": 2})
	return core.Build(g, reqs)
}

func roundTrip(t *testing.T, dk *core.DK) *core.DK {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveDK(&buf, dk); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDK(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTripPreservesEverything(t *testing.T) {
	dk := buildSample(t)
	got := roundTrip(t, dk)

	if err := got.IG.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := core.CheckInvariant(got.IG); err != nil {
		t.Fatal(err)
	}
	if got.IG.NumNodes() != dk.IG.NumNodes() || got.IG.NumEdges() != dk.IG.NumEdges() {
		t.Errorf("index shape changed: %d/%d -> %d/%d",
			dk.IG.NumNodes(), dk.IG.NumEdges(), got.IG.NumNodes(), got.IG.NumEdges())
	}
	gd, dd := got.IG.Data(), dk.IG.Data()
	if gd.NumNodes() != dd.NumNodes() || gd.NumEdges() != dd.NumEdges() {
		t.Error("data graph shape changed")
	}
	if gd.Root() != dd.Root() {
		t.Error("root changed")
	}
	for d := 0; d < dd.NumNodes(); d++ {
		n := graph.NodeID(d)
		if gd.LabelName(n) != dd.LabelName(n) {
			t.Fatalf("label of node %d changed", d)
		}
		if got.IG.IndexOf(n) != dk.IG.IndexOf(n) {
			t.Fatalf("extent assignment of node %d changed", d)
		}
	}
	for b := 0; b < dk.IG.NumNodes(); b++ {
		if got.IG.K(graph.NodeID(b)) != dk.IG.K(graph.NodeID(b)) {
			t.Fatalf("similarity of index node %d changed", b)
		}
	}
	if len(got.LabelReqs) != len(dk.LabelReqs) {
		t.Error("requirements changed")
	}
	for l, k := range dk.LabelReqs {
		if got.LabelReqs[l] != k {
			t.Errorf("requirement for label %d changed", l)
		}
	}
}

func TestRoundTripQueriesIdentically(t *testing.T) {
	dk := buildSample(t)
	got := roundTrip(t, dk)
	g := dk.IG.Data()
	rng := rand.New(rand.NewSource(3))
	for qi := 0; qi < 20; qi++ {
		n := graph.NodeID(rng.Intn(g.NumNodes()))
		q := eval.Query{g.Label(n)}
		for len(q) < 4 {
			ch := g.Children(n)
			if len(ch) == 0 {
				break
			}
			n = ch[rng.Intn(len(ch))]
			q = append(q, g.Label(n))
		}
		a, ca := eval.Index(dk.IG, q)
		b, cb := eval.Index(got.IG, q)
		if !eval.SameResult(a, b) {
			t.Fatalf("query %s differs after round trip", q.Format(g.Labels()))
		}
		if ca.Total() != cb.Total() {
			t.Fatalf("query %s cost differs after round trip: %d vs %d",
				q.Format(g.Labels()), ca.Total(), cb.Total())
		}
	}
}

func TestRoundTripAfterUpdates(t *testing.T) {
	dk := buildSample(t)
	g := dk.IG.Data()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if u != v && v != g.Root() {
			dk.AddEdge(u, v)
		}
	}
	got := roundTrip(t, dk)
	if err := got.IG.Validate(); err != nil {
		t.Fatal(err)
	}
	// Decayed similarities survive the round trip.
	for b := 0; b < dk.IG.NumNodes(); b++ {
		if got.IG.K(graph.NodeID(b)) != dk.IG.K(graph.NodeID(b)) {
			t.Fatalf("decayed similarity of node %d lost", b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"DKIX",               // truncated before version
		"NOPE\x01",           // wrong magic
		"DKIX\x63",           // wrong version
		"DKIX\x01\xff\xff",   // implausible label count prefix then EOF
		"DKIX\x01\x01\x03ab", // truncated label string
	}
	for _, c := range cases {
		if _, err := LoadDK(strings.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	dk := buildSample(t)
	var buf bytes.Buffer
	if err := SaveDK(&buf, dk); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := LoadDK(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// saveLegacy encodes dk in the unframed version-1 format: the same section
// payloads, concatenated without length prefixes or checksums.
func saveLegacy(dk *core.DK) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(versionLegacy)
	enc := &encoder{w: &buf}
	g := dk.IG.Data()
	encodeLabels(enc, g)
	encodeGraph(enc, g)
	encodeIndex(enc, dk.IG)
	encodeReqs(enc, dk)
	return buf.Bytes()
}

func TestLegacyVersion1StillLoads(t *testing.T) {
	dk := buildSample(t)
	got, err := LoadDK(bytes.NewReader(saveLegacy(dk)))
	if err != nil {
		t.Fatalf("legacy stream rejected: %v", err)
	}
	if err := got.IG.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.IG.NumNodes() != dk.IG.NumNodes() {
		t.Fatalf("index shape changed: %d -> %d", dk.IG.NumNodes(), got.IG.NumNodes())
	}
	for b := 0; b < dk.IG.NumNodes(); b++ {
		if got.IG.K(graph.NodeID(b)) != dk.IG.K(graph.NodeID(b)) {
			t.Fatalf("similarity of index node %d changed", b)
		}
	}
}

// frameRanges walks a version-2 stream and returns the byte ranges
// [start,end) of each section frame, keyed by section name.
func frameRanges(t *testing.T, data []byte) map[string][2]int {
	t.Helper()
	out := make(map[string][2]int)
	off := 5 // magic + version
	for off < len(data) {
		start := off
		id := data[off]
		off++
		plen, n := binaryUvarint(data[off:])
		if n <= 0 {
			t.Fatalf("bad frame length at %d", off)
		}
		off += n + int(plen) + 4
		out[sectionNames[id]] = [2]int{start, off}
	}
	return out
}

func binaryUvarint(b []byte) (uint64, int) {
	var v uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return v | uint64(c)<<s, i + 1
		}
		v |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}

func TestCorruptionReportsSectionAndOffset(t *testing.T) {
	dk := buildSample(t)
	var buf bytes.Buffer
	if err := SaveDK(&buf, dk); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	frames := frameRanges(t, full)

	for _, section := range []string{"labels", "graph", "index", "requirements"} {
		r, ok := frames[section]
		if !ok {
			t.Fatalf("stream has no %s frame", section)
		}
		cp := append([]byte(nil), full...)
		cp[(r[0]+r[1])/2] ^= 0x5a // flip a payload byte mid-frame
		_, err := LoadDK(bytes.NewReader(cp))
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s corruption: want *CorruptError, got %v", section, err)
		}
		if ce.Section != section {
			t.Errorf("%s corruption reported in section %q", section, ce.Section)
		}
		if ce.Offset != int64(r[0]) {
			t.Errorf("%s corruption reported at %d, frame starts at %d", section, ce.Offset, r[0])
		}
	}
}

func TestTruncationReportsCorruptError(t *testing.T) {
	dk := buildSample(t)
	var buf bytes.Buffer
	if err := SaveDK(&buf, dk); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 5; cut < len(full); cut += len(full) / 17 {
		_, err := LoadDK(bytes.NewReader(full[:cut]))
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation at %d: want *CorruptError, got %v", cut, err)
		}
	}
}

// Property: random corruption of a single byte either fails to load or
// loads into a structurally valid index (never panics, never corrupts
// silently into an invalid structure).
func TestQuickCorruptionIsHandled(t *testing.T) {
	dk := buildSample(t)
	var buf bytes.Buffer
	if err := SaveDK(&buf, dk); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	f := func(pos uint32, val byte) bool {
		cp := append([]byte(nil), full...)
		cp[int(pos)%len(cp)] ^= val | 1
		got, err := LoadDK(bytes.NewReader(cp))
		if err != nil {
			return true
		}
		return got.IG.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
