package codec

import (
	"bytes"
	"testing"

	"dkindex/internal/core"
	"dkindex/internal/graph"
)

// FuzzLoadDK feeds arbitrary bytes (seeded with a valid file) to the index
// loader: it must never panic, and anything it accepts must be structurally
// valid.
func FuzzLoadDK(f *testing.F) {
	// A valid serialized index as the primary seed.
	fg := graph.FigureOneMovies()
	dk0 := core.Build(fg, core.ReqsFromNames(fg.Labels(), map[string]int{"title": 2}))
	var buf bytes.Buffer
	if err := SaveDK(&buf, dk0); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("DKIX"))
	f.Add([]byte("DKIX\x01"))
	f.Add([]byte("DKIX\x01\x00"))
	f.Add([]byte("NOPE\x01\x02\x03"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		dk, err := LoadDK(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := dk.IG.Validate(); err != nil {
			t.Fatalf("accepted bytes produced invalid index: %v", err)
		}
	})
}
