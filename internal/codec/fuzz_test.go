package codec

import (
	"bytes"
	"testing"

	"dkindex/internal/core"
	"dkindex/internal/graph"
)

// FuzzLoadDK feeds arbitrary bytes (seeded with valid framed and legacy
// files, plus truncations at every section boundary) to the index loader:
// it must never panic, and anything it accepts must be structurally valid.
func FuzzLoadDK(f *testing.F) {
	// A valid serialized index as the primary seed.
	fg := graph.FigureOneMovies()
	dk0 := core.Build(fg, core.ReqsFromNames(fg.Labels(), map[string]int{"title": 2}))
	var buf bytes.Buffer
	if err := SaveDK(&buf, dk0); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(saveLegacy(dk0))

	// Truncations of the valid stream at every section boundary (and one
	// byte either side), the exact shapes a torn checkpoint write produces.
	off := 5
	for off < len(full) {
		plen, n := binaryUvarint(full[off+1:])
		if n <= 0 {
			break
		}
		end := off + 1 + n + int(plen) + 4
		for _, cut := range []int{off, off + 1, end - 1} {
			if cut <= len(full) {
				f.Add(append([]byte(nil), full[:cut]...))
			}
		}
		off = end
	}

	f.Add([]byte{})
	f.Add([]byte("DKIX"))
	f.Add([]byte("DKIX\x01"))
	f.Add([]byte("DKIX\x02"))
	f.Add([]byte("DKIX\x01\x00"))
	f.Add([]byte("DKIX\x02\x01\x00"))
	f.Add([]byte("NOPE\x01\x02\x03"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		dk, err := LoadDK(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := dk.IG.Validate(); err != nil {
			t.Fatalf("accepted bytes produced invalid index: %v", err)
		}
	})
}
