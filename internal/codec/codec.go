// Package codec persists D(k)-indexes to a compact, versioned binary format
// and restores them: the data graph (labels, edges, root), the extents and
// local similarities, and the query-load requirements. Index adjacency is
// re-derived on load rather than stored.
//
// Version 2 frames every section with a length prefix and a CRC32 checksum,
// so truncation and corruption are detected — and reported with the section
// name and byte offset via *CorruptError — instead of decoding into garbage.
// Version 1 streams (unframed) remain readable.
//
// Layout (all integers are unsigned varints unless noted):
//
//	magic "DKIX", version byte
//	then, per section: section id byte, payload length, payload,
//	                   CRC32/IEEE of the payload (4 bytes little-endian)
//
// Section payloads, in file order:
//
//	labels:        count, then length-prefixed strings
//	graph:         node count, per-node label id, root+1 (0 = none),
//	               edge count, edges as (from, to) pairs
//	index:         node count, per-node: local similarity, extent size,
//	               extent node ids delta-coded
//	requirements:  count, (label id, k) pairs
package codec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"dkindex/internal/core"
	"dkindex/internal/graph"
	"dkindex/internal/index"
)

var magic = [4]byte{'D', 'K', 'I', 'X'}

// Version is the current format version (checksummed frames).
const Version = 2

// versionLegacy is the unframed, checksum-free original format; still
// readable.
const versionLegacy = 1

// ErrBadFormat reports a foreign file: wrong magic or unknown version.
var ErrBadFormat = errors.New("codec: not a D(k)-index file")

// Section ids of the version-2 framing, in file order.
const (
	sectionLabels byte = 1 + iota
	sectionGraph
	sectionIndex
	sectionReqs
)

var sectionNames = map[byte]string{
	sectionLabels: "labels",
	sectionGraph:  "graph",
	sectionIndex:  "index",
	sectionReqs:   "requirements",
}

// CorruptError reports a stream that carries the D(k)-index magic but whose
// content is truncated, checksum-damaged or semantically impossible. Offset
// is the byte position in the stream where the damage was detected; Section
// names the framing section being read.
type CorruptError struct {
	Section string
	Offset  int64
	Err     error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("codec: corrupt stream in section %q at byte %d: %v", e.Section, e.Offset, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// corrupt wraps err with section and offset context.
func corrupt(section string, offset int64, err error) error {
	return &CorruptError{Section: section, Offset: offset, Err: err}
}

// SaveDK writes the index and everything needed to restore it, in the
// current (checksummed) format.
func SaveDK(w io.Writer, dk *core.DK) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(Version); err != nil {
		return err
	}
	var buf bytes.Buffer
	enc := &encoder{w: &buf}
	g := dk.IG.Data()

	for _, sec := range []struct {
		id     byte
		encode func()
	}{
		{sectionLabels, func() { encodeLabels(enc, g) }},
		{sectionGraph, func() { encodeGraph(enc, g) }},
		{sectionIndex, func() { encodeIndex(enc, dk.IG) }},
		{sectionReqs, func() { encodeReqs(enc, dk) }},
	} {
		buf.Reset()
		sec.encode()
		if err := writeFrame(bw, sec.id, buf.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeFrame emits one section: id, length, payload, checksum.
func writeFrame(bw *bufio.Writer, id byte, payload []byte) error {
	if err := bw.WriteByte(id); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	var sumBuf [4]byte
	binary.LittleEndian.PutUint32(sumBuf[:], crc32.ChecksumIEEE(payload))
	_, err := bw.Write(sumBuf[:])
	return err
}

func encodeLabels(enc *encoder, g *graph.Graph) {
	tab := g.Labels()
	enc.uint(uint64(tab.Len()))
	for l := 0; l < tab.Len(); l++ {
		enc.str(tab.Name(graph.LabelID(l)))
	}
}

func encodeGraph(enc *encoder, g *graph.Graph) {
	enc.uint(uint64(g.NumNodes()))
	for n := 0; n < g.NumNodes(); n++ {
		enc.uint(uint64(g.Label(graph.NodeID(n))))
	}
	enc.uint(uint64(g.Root() + 1))
	enc.uint(uint64(g.NumEdges()))
	for n := 0; n < g.NumNodes(); n++ {
		for _, c := range g.Children(graph.NodeID(n)) {
			enc.uint(uint64(n))
			enc.uint(uint64(c))
		}
	}
}

func encodeIndex(enc *encoder, ig *index.IndexGraph) {
	enc.uint(uint64(ig.NumNodes()))
	for b := 0; b < ig.NumNodes(); b++ {
		enc.uint(uint64(ig.K(graph.NodeID(b))))
		ext := ig.ExtentSet(graph.NodeID(b))
		enc.uint(uint64(ext.Len()))
		prev := graph.NodeID(0)
		ext.Iterate(func(d graph.NodeID) bool {
			enc.uint(uint64(d - prev)) // extents are sorted ascending
			prev = d
			return true
		})
	}
}

func encodeReqs(enc *encoder, dk *core.DK) {
	labels := dk.LabelReqs.SortedLabels()
	enc.uint(uint64(len(labels)))
	for _, l := range labels {
		enc.uint(uint64(l))
		enc.uint(uint64(dk.LabelReqs[l]))
	}
}

// LoadDK restores an index written by SaveDK: the current checksummed
// format or the legacy unframed one. Damage is reported as *CorruptError.
func LoadDK(r io.Reader) (*core.DK, error) {
	cr := &countingReader{r: bufio.NewReader(r)}
	var m [5]byte
	if _, err := io.ReadFull(cr, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if [4]byte{m[0], m[1], m[2], m[3]} != magic {
		return nil, ErrBadFormat
	}
	st := &loadState{}
	switch m[4] {
	case versionLegacy:
		if err := st.loadLegacy(cr); err != nil {
			return nil, err
		}
	case Version:
		if err := st.loadFramed(cr); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, m[4])
	}
	ig, err := index.Reconstruct(st.g, st.extents, st.ks)
	if err != nil {
		return nil, corrupt("index", cr.n, err)
	}
	return &core.DK{IG: ig, LabelReqs: st.reqs}, nil
}

// loadFramed reads the version-2 section frames.
func (st *loadState) loadFramed(cr *countingReader) error {
	for _, want := range []byte{sectionLabels, sectionGraph, sectionIndex, sectionReqs} {
		name := sectionNames[want]
		frameStart := cr.n
		id, err := cr.ReadByte()
		if err != nil {
			return corrupt(name, frameStart, fmt.Errorf("truncated frame header: %w", err))
		}
		if id != want {
			return corrupt(name, frameStart, fmt.Errorf("unexpected section id %d (want %d)", id, want))
		}
		plen, err := binary.ReadUvarint(cr)
		if err != nil {
			return corrupt(name, frameStart, fmt.Errorf("truncated frame length: %w", err))
		}
		if plen > 1<<31 {
			return corrupt(name, frameStart, fmt.Errorf("implausible section length %d", plen))
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(cr, payload); err != nil {
			return corrupt(name, frameStart, fmt.Errorf("truncated section payload: %w", err))
		}
		var sumBuf [4]byte
		if _, err := io.ReadFull(cr, sumBuf[:]); err != nil {
			return corrupt(name, frameStart, fmt.Errorf("truncated section checksum: %w", err))
		}
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(sumBuf[:]); got != want {
			return corrupt(name, frameStart, fmt.Errorf("checksum mismatch (computed %08x, stored %08x)", got, want))
		}
		dec := &decoder{r: bytes.NewReader(payload)}
		if err := st.decodeSection(want, dec); err != nil {
			return corrupt(name, frameStart, err)
		}
	}
	return nil
}

// loadLegacy reads the unframed version-1 stream, tracking which logical
// section it is in so errors still carry section context.
func (st *loadState) loadLegacy(cr *countingReader) error {
	dec := &decoder{r: cr}
	for _, id := range []byte{sectionLabels, sectionGraph, sectionIndex, sectionReqs} {
		start := cr.n
		if err := st.decodeSection(id, dec); err != nil {
			return corrupt(sectionNames[id], start, err)
		}
	}
	return nil
}

// loadState accumulates decoded sections until the index is reassembled.
type loadState struct {
	tab     *graph.LabelTable
	g       *graph.Graph
	nLabels uint64
	nNodes  uint64
	ks      []int
	extents [][]graph.NodeID
	reqs    core.Requirements
}

func (st *loadState) decodeSection(id byte, dec *decoder) error {
	switch id {
	case sectionLabels:
		return st.decodeLabels(dec)
	case sectionGraph:
		return st.decodeGraph(dec)
	case sectionIndex:
		return st.decodeIndex(dec)
	case sectionReqs:
		return st.decodeReqs(dec)
	}
	return fmt.Errorf("unknown section id %d", id)
}

func (st *loadState) decodeLabels(dec *decoder) error {
	st.tab = graph.NewLabelTable()
	st.nLabels = dec.uint()
	if st.nLabels > 1<<24 {
		return fmt.Errorf("implausible label count %d", st.nLabels)
	}
	for i := uint64(0); i < st.nLabels; i++ {
		name := dec.str()
		if dec.err != nil {
			return dec.err
		}
		if got := st.tab.Intern(name); got != graph.LabelID(i) {
			return fmt.Errorf("duplicate label %q", name)
		}
	}
	return dec.err
}

func (st *loadState) decodeGraph(dec *decoder) error {
	st.g = graph.NewWithLabels(st.tab)
	st.nNodes = dec.uint()
	if st.nNodes > 1<<31 {
		return fmt.Errorf("implausible node count %d", st.nNodes)
	}
	for i := uint64(0); i < st.nNodes; i++ {
		l := dec.uint()
		if dec.err != nil {
			return dec.err
		}
		if l >= st.nLabels {
			return fmt.Errorf("node %d has label %d out of range", i, l)
		}
		st.g.AddNodeID(graph.LabelID(l))
	}
	if root := dec.uint(); root > 0 {
		if root > st.nNodes {
			return fmt.Errorf("root %d out of range", root-1)
		}
		st.g.SetRoot(graph.NodeID(root - 1))
	}
	nEdges := dec.uint()
	if nEdges > 1<<32 {
		return fmt.Errorf("implausible edge count %d", nEdges)
	}
	for i := uint64(0); i < nEdges; i++ {
		from, to := dec.uint(), dec.uint()
		if dec.err != nil {
			return dec.err
		}
		if from >= st.nNodes || to >= st.nNodes {
			return fmt.Errorf("edge %d-%d out of range", from, to)
		}
		st.g.AddEdge(graph.NodeID(from), graph.NodeID(to))
	}
	return dec.err
}

func (st *loadState) decodeIndex(dec *decoder) error {
	nIdx := dec.uint()
	if nIdx > st.nNodes {
		return fmt.Errorf("more index nodes (%d) than data nodes (%d)", nIdx, st.nNodes)
	}
	st.ks = make([]int, nIdx)
	st.extents = make([][]graph.NodeID, nIdx)
	for b := uint64(0); b < nIdx; b++ {
		st.ks[b] = int(dec.uint())
		sz := dec.uint()
		if dec.err != nil {
			return dec.err
		}
		if sz == 0 || sz > st.nNodes {
			return fmt.Errorf("extent %d has implausible size %d", b, sz)
		}
		ext := make([]graph.NodeID, sz)
		cur := uint64(0)
		for i := uint64(0); i < sz; i++ {
			cur += dec.uint()
			if cur >= st.nNodes {
				return fmt.Errorf("extent %d references node %d out of range", b, cur)
			}
			ext[i] = graph.NodeID(cur)
		}
		st.extents[b] = ext
	}
	return dec.err
}

func (st *loadState) decodeReqs(dec *decoder) error {
	st.reqs = make(core.Requirements)
	nReqs := dec.uint()
	if nReqs > st.nLabels {
		return fmt.Errorf("more requirements (%d) than labels", nReqs)
	}
	for i := uint64(0); i < nReqs; i++ {
		l, k := dec.uint(), dec.uint()
		if l >= st.nLabels {
			return fmt.Errorf("requirement label %d out of range", l)
		}
		st.reqs[graph.LabelID(l)] = int(k)
	}
	return dec.err
}

// countingReader tracks the byte offset for error reporting.
type countingReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

type encoder struct {
	w   *bytes.Buffer
	buf [binary.MaxVarintLen64]byte
}

func (e *encoder) uint(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.w.Write(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uint(uint64(len(s)))
	e.w.WriteString(s)
}

// byteReader is what the decoder consumes: payload buffers (bytes.Reader) in
// the framed format, the counting stream in the legacy one.
type byteReader interface {
	io.Reader
	io.ByteReader
}

type decoder struct {
	r   byteReader
	err error
}

func (d *decoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("truncated stream: %w", err)
		return 0
	}
	return v
}

func (d *decoder) str() string {
	n := d.uint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = fmt.Errorf("truncated string: %w", err)
		return ""
	}
	return string(buf)
}
