// Package codec persists D(k)-indexes to a compact, versioned binary format
// and restores them: the data graph (labels, edges, root), the extents and
// local similarities, and the query-load requirements. Index adjacency is
// re-derived on load rather than stored.
//
// Layout (all integers are unsigned varints unless noted):
//
//	magic "DKIX", version byte
//	label table:   count, then length-prefixed strings
//	data graph:    node count, per-node label id, root+1 (0 = none),
//	               edge count, edges as (from, to) pairs delta-coded by from
//	index:         node count, per-node: local similarity, extent size,
//	               extent node ids delta-coded
//	requirements:  count, (label id, k) pairs
package codec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dkindex/internal/core"
	"dkindex/internal/graph"
	"dkindex/internal/index"
)

var magic = [4]byte{'D', 'K', 'I', 'X'}

// Version is the current format version.
const Version = 1

// ErrBadFormat reports a corrupt or foreign file.
var ErrBadFormat = errors.New("codec: not a D(k)-index file")

// SaveDK writes the index and everything needed to restore it.
func SaveDK(w io.Writer, dk *core.DK) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(Version); err != nil {
		return err
	}
	enc := &encoder{w: bw}
	g := dk.IG.Data()

	// Label table.
	tab := g.Labels()
	enc.uint(uint64(tab.Len()))
	for l := 0; l < tab.Len(); l++ {
		enc.str(tab.Name(graph.LabelID(l)))
	}

	// Data graph.
	enc.uint(uint64(g.NumNodes()))
	for n := 0; n < g.NumNodes(); n++ {
		enc.uint(uint64(g.Label(graph.NodeID(n))))
	}
	enc.uint(uint64(g.Root() + 1))
	enc.uint(uint64(g.NumEdges()))
	for n := 0; n < g.NumNodes(); n++ {
		for _, c := range g.Children(graph.NodeID(n)) {
			enc.uint(uint64(n))
			enc.uint(uint64(c))
		}
	}

	// Index nodes.
	ig := dk.IG
	enc.uint(uint64(ig.NumNodes()))
	for b := 0; b < ig.NumNodes(); b++ {
		enc.uint(uint64(ig.K(graph.NodeID(b))))
		ext := ig.Extent(graph.NodeID(b))
		enc.uint(uint64(len(ext)))
		prev := graph.NodeID(0)
		for _, d := range ext {
			enc.uint(uint64(d - prev)) // extents are sorted ascending
			prev = d
		}
	}

	// Requirements.
	labels := dk.LabelReqs.SortedLabels()
	enc.uint(uint64(len(labels)))
	for _, l := range labels {
		enc.uint(uint64(l))
		enc.uint(uint64(dk.LabelReqs[l]))
	}
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// LoadDK restores an index written by SaveDK.
func LoadDK(r io.Reader) (*core.DK, error) {
	br := bufio.NewReader(r)
	var m [5]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if [4]byte{m[0], m[1], m[2], m[3]} != magic {
		return nil, ErrBadFormat
	}
	if m[4] != Version {
		return nil, fmt.Errorf("codec: unsupported version %d", m[4])
	}
	dec := &decoder{r: br}

	// Label table.
	tab := graph.NewLabelTable()
	nLabels := dec.uint()
	if nLabels > 1<<24 {
		return nil, fmt.Errorf("codec: implausible label count %d", nLabels)
	}
	for i := uint64(0); i < nLabels; i++ {
		name := dec.str()
		if dec.err != nil {
			return nil, dec.err
		}
		if got := tab.Intern(name); got != graph.LabelID(i) {
			return nil, fmt.Errorf("codec: duplicate label %q", name)
		}
	}

	// Data graph.
	g := graph.NewWithLabels(tab)
	nNodes := dec.uint()
	if nNodes > 1<<31 {
		return nil, fmt.Errorf("codec: implausible node count %d", nNodes)
	}
	for i := uint64(0); i < nNodes; i++ {
		l := dec.uint()
		if dec.err != nil {
			return nil, dec.err
		}
		if l >= nLabels {
			return nil, fmt.Errorf("codec: node %d has label %d out of range", i, l)
		}
		g.AddNodeID(graph.LabelID(l))
	}
	if root := dec.uint(); root > 0 {
		if root > nNodes {
			return nil, fmt.Errorf("codec: root %d out of range", root-1)
		}
		g.SetRoot(graph.NodeID(root - 1))
	}
	nEdges := dec.uint()
	if nEdges > 1<<32 {
		return nil, fmt.Errorf("codec: implausible edge count %d", nEdges)
	}
	for i := uint64(0); i < nEdges; i++ {
		from, to := dec.uint(), dec.uint()
		if dec.err != nil {
			return nil, dec.err
		}
		if from >= nNodes || to >= nNodes {
			return nil, fmt.Errorf("codec: edge %d-%d out of range", from, to)
		}
		g.AddEdge(graph.NodeID(from), graph.NodeID(to))
	}

	// Index nodes.
	nIdx := dec.uint()
	if nIdx > nNodes {
		return nil, fmt.Errorf("codec: more index nodes (%d) than data nodes (%d)", nIdx, nNodes)
	}
	ks := make([]int, nIdx)
	extents := make([][]graph.NodeID, nIdx)
	for b := uint64(0); b < nIdx; b++ {
		ks[b] = int(dec.uint())
		sz := dec.uint()
		if dec.err != nil {
			return nil, dec.err
		}
		if sz == 0 || sz > nNodes {
			return nil, fmt.Errorf("codec: extent %d has implausible size %d", b, sz)
		}
		ext := make([]graph.NodeID, sz)
		cur := uint64(0)
		for i := uint64(0); i < sz; i++ {
			cur += dec.uint()
			if cur >= nNodes {
				return nil, fmt.Errorf("codec: extent %d references node %d out of range", b, cur)
			}
			ext[i] = graph.NodeID(cur)
		}
		extents[b] = ext
	}

	// Requirements.
	reqs := make(core.Requirements)
	nReqs := dec.uint()
	if nReqs > nLabels {
		return nil, fmt.Errorf("codec: more requirements (%d) than labels", nReqs)
	}
	for i := uint64(0); i < nReqs; i++ {
		l, k := dec.uint(), dec.uint()
		if l >= nLabels {
			return nil, fmt.Errorf("codec: requirement label %d out of range", l)
		}
		reqs[graph.LabelID(l)] = int(k)
	}
	if dec.err != nil {
		return nil, dec.err
	}

	ig, err := index.Reconstruct(g, extents, ks)
	if err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return &core.DK{IG: ig, LabelReqs: reqs}, nil
}

type encoder struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *encoder) uint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("codec: truncated file: %w", err)
		return 0
	}
	return v
}

func (d *decoder) str() string {
	n := d.uint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.err = fmt.Errorf("codec: implausible string length %d", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = fmt.Errorf("codec: truncated string: %w", err)
		return ""
	}
	return string(buf)
}
