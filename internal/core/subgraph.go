package core

import (
	"fmt"

	"dkindex/internal/graph"
	"dkindex/internal/index"
)

// AddSubgraph is Algorithm 3, the subgraph-addition update: the document
// graph h (with its own ROOT) is grafted under the root of the indexed data
// graph — h's root is identified with the data graph's root — and the index
// is updated without re-examining the old data:
//
//  1. the D(k)-index I_H of the new subgraph is constructed;
//  2. I_H is attached under the root class of the current index I_G;
//  3. the combination is treated as a data graph and the D(k)-index is
//     rebuilt from it, merging extents (justified by Theorem 2).
//
// It returns the mapping from h's node ids to the ids the grafted nodes
// received in the data graph (h's root maps to the data graph's root).
// Labels are matched by name, so h may use its own label table.
func (dk *DK) AddSubgraph(h *graph.Graph) ([]graph.NodeID, error) {
	g := dk.IG.Data()
	if g.Root() == graph.InvalidNode {
		return nil, fmt.Errorf("core: data graph has no root to graft under")
	}
	if h.Root() == graph.InvalidNode {
		return nil, fmt.Errorf("core: subgraph has no root")
	}

	// Graft h's nodes into the data graph and, in parallel, build hg: a
	// standalone copy of h sharing g's label table, over which I_H is
	// constructed. hgToG translates hg node ids to data-graph ids.
	mapping := make([]graph.NodeID, h.NumNodes())
	hg := graph.NewWithLabels(g.Labels())
	hgRoot := hg.AddRoot()
	hgOf := make([]graph.NodeID, h.NumNodes())
	hgToG := []graph.NodeID{g.Root()}
	for n := 0; n < h.NumNodes(); n++ {
		hn := graph.NodeID(n)
		if hn == h.Root() {
			mapping[n] = g.Root()
			hgOf[n] = hgRoot
			continue
		}
		l := g.Labels().Intern(h.LabelName(hn))
		mapping[n] = g.AddNodeID(l)
		hgOf[n] = hg.AddNodeID(l)
		hgToG = append(hgToG, mapping[n])
	}
	for n := 0; n < h.NumNodes(); n++ {
		for _, c := range h.Children(graph.NodeID(n)) {
			g.AddEdge(mapping[n], mapping[c])
			hg.AddEdge(hgOf[n], hgOf[c])
		}
	}

	// Step 1: D(k)-index of the new subgraph, with the same per-label
	// requirements ("index nodes with the same label should have the same
	// local similarity").
	ih, _ := buildFromSource(index.DataSource{G: hg}, dk.LabelReqs, nil, false)

	// Steps 2+3: rebuild over the composite of I_G and I_H.
	comp, err := newCompositeSource(dk.IG, ih, hgToG)
	if err != nil {
		return nil, err
	}
	dk.IG, dk.Stats = buildFromSource(comp, dk.LabelReqs, comp.memberK, false)
	return mapping, nil
}

// compositeSource presents the old index I_G with the subgraph index I_H
// grafted under its root class as one construction source. Composite node
// ids are: [0, base) = I_G nodes, [base, ...) = I_H nodes except I_H's root
// class, whose children re-parent to I_G's root class.
type compositeSource struct {
	ig, ih   *index.IndexGraph
	base     int
	ihRoot   graph.NodeID // I_H's root class (excluded)
	igRoot   graph.NodeID // I_G's root class
	hgToG    []graph.NodeID
	numNodes int
}

func newCompositeSource(ig, ih *index.IndexGraph, hgToG []graph.NodeID) (*compositeSource, error) {
	ihRoot := ih.IndexOf(ih.Data().Root())
	if ih.ExtentSize(ihRoot) != 1 {
		return nil, fmt.Errorf("core: subgraph index root class is not a singleton")
	}
	return &compositeSource{
		ig:       ig,
		ih:       ih,
		base:     ig.NumNodes(),
		ihRoot:   ihRoot,
		igRoot:   ig.IndexOf(ig.Data().Root()),
		hgToG:    hgToG,
		numNodes: ig.NumNodes() + ih.NumNodes() - 1,
	}, nil
}

// toIH translates a composite id >= base to an I_H node id, skipping the
// excluded root class.
func (c *compositeSource) toIH(n graph.NodeID) graph.NodeID {
	j := n - graph.NodeID(c.base)
	if j >= c.ihRoot {
		j++
	}
	return j
}

// fromIH translates an I_H node id (!= ihRoot) to a composite id.
func (c *compositeSource) fromIH(j graph.NodeID) graph.NodeID {
	if j > c.ihRoot {
		j--
	}
	return j + graph.NodeID(c.base)
}

func (c *compositeSource) NumNodes() int { return c.numNodes }

func (c *compositeSource) Label(n graph.NodeID) graph.LabelID {
	if int(n) < c.base {
		return c.ig.Label(n)
	}
	return c.ih.Label(c.toIH(n))
}

func (c *compositeSource) Parents(n graph.NodeID) []graph.NodeID {
	if int(n) < c.base {
		return c.ig.Parents(n)
	}
	ps := c.ih.Parents(c.toIH(n))
	out := make([]graph.NodeID, 0, len(ps))
	for _, p := range ps {
		if p == c.ihRoot {
			out = append(out, c.igRoot)
		} else {
			out = append(out, c.fromIH(p))
		}
	}
	return out
}

func (c *compositeSource) Children(n graph.NodeID) []graph.NodeID {
	if int(n) < c.base {
		// Copy: the index owns the adjacency slice, and the igRoot case
		// appends the added subgraph's children to it.
		out := append([]graph.NodeID(nil), c.ig.Children(n)...)
		if n == c.igRoot {
			for _, ch := range c.ih.Children(c.ihRoot) {
				out = append(out, c.fromIH(ch))
			}
		}
		return out
	}
	chs := c.ih.Children(c.toIH(n))
	out := make([]graph.NodeID, 0, len(chs))
	for _, ch := range chs {
		out = append(out, c.fromIH(ch)) // ihRoot is never a child: it holds the ROOT label
	}
	return out
}

func (c *compositeSource) AppendExtent(dst []graph.NodeID, n graph.NodeID) []graph.NodeID {
	if int(n) < c.base {
		return c.ig.AppendExtent(dst, n)
	}
	// Iterate the compressed extent directly; the hgToG remap means the
	// appended run may be unsorted, and construction sorts before encoding.
	c.ih.ExtentSet(c.toIH(n)).Iterate(func(hn graph.NodeID) bool {
		dst = append(dst, c.hgToG[hn])
		return true
	})
	return dst
}

func (c *compositeSource) Data() *graph.Graph { return c.ig.Data() }

// memberK reports the established local similarity of a composite node, used
// to clamp the rebuilt index when old similarities have decayed.
func (c *compositeSource) memberK(n graph.NodeID) int {
	if int(n) < c.base {
		return c.ig.K(n)
	}
	return c.ih.K(c.toIH(n))
}

var _ index.Source = (*compositeSource)(nil)
