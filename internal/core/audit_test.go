package core

import (
	"math/rand"
	"testing"

	"dkindex/internal/graph"
)

// TestAuditedUpdateSequences drives random interleaved additions and
// removals, auditing every similarity claim after each operation.
func TestAuditedUpdateSequences(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed+700, 180, 4, 60)
		rng := rand.New(rand.NewSource(seed * 11))
		reqs := make(Requirements)
		for l := 0; l < g.Labels().Len(); l++ {
			reqs[graph.LabelID(l)] = 2
		}
		dk := Build(g, reqs)
		if err := Audit(dk.IG, 3); err != nil {
			t.Fatalf("seed %d: unsound after build: %v", seed, err)
		}
		for op := 0; op < 25; op++ {
			if rng.Intn(2) == 0 {
				u := graph.NodeID(rng.Intn(g.NumNodes()))
				ch := g.Children(u)
				if len(ch) == 0 {
					continue
				}
				v := ch[rng.Intn(len(ch))]
				if v == g.Root() {
					continue
				}
				dk.RemoveEdge(u, v)
				if err := Audit(dk.IG, 3); err != nil {
					t.Fatalf("seed %d: unsound after removing %d->%d: %v", seed, u, v, err)
				}
			} else {
				a := graph.NodeID(rng.Intn(g.NumNodes()))
				b := graph.NodeID(rng.Intn(g.NumNodes()))
				if a != b && b != g.Root() {
					dk.AddEdge(a, b)
					if err := Audit(dk.IG, 3); err != nil {
						t.Fatalf("seed %d: unsound after adding %d->%d: %v", seed, a, b, err)
					}
				}
			}
			if err := CheckInvariant(dk.IG); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if err := dk.IG.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
