package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dkindex/internal/eval"
	"dkindex/internal/graph"
)

type genSpec struct {
	Seed   int64
	Nodes  uint8
	Labels uint8
	Extra  uint8
}

func (s genSpec) build() *graph.Graph {
	nodes := int(s.Nodes%100) + 2
	labels := int(s.Labels%4) + 1
	extra := int(s.Extra % 40)
	return randomGraph(s.Seed, nodes, labels, extra)
}

func randomReqs(g *graph.Graph, seed int64) Requirements {
	rng := rand.New(rand.NewSource(seed))
	reqs := make(Requirements)
	for l := 0; l < g.Labels().Len(); l++ {
		if k := rng.Intn(4); k > 0 {
			reqs[graph.LabelID(l)] = k
		}
	}
	return reqs
}

// checkIndexExact verifies, for a sample of data-derived queries, that
// validated evaluation equals ground truth and that any validation-free
// answer is already exact (the soundness of claimed similarities).
func checkIndexExact(dk *DK, seed int64) bool {
	g := dk.IG.Data()
	rng := rand.New(rand.NewSource(seed))
	for qi := 0; qi < 12; qi++ {
		q := randomWalkQuery(rng, g, 2+rng.Intn(4))
		truth, _ := eval.Data(g, q)
		res, cost := eval.Index(dk.IG, q)
		if !eval.SameResult(res, truth) {
			return false
		}
		if cost.Validations == 0 {
			raw, _ := eval.IndexNoValidation(dk.IG, q)
			if !eval.SameResult(raw, truth) {
				return false
			}
		}
	}
	return true
}

// Property: construction with arbitrary requirements yields a valid index
// satisfying Definition 3, exact under validation, and sound within claimed
// budgets.
func TestQuickBuildInvariants(t *testing.T) {
	f := func(s genSpec, reqSeed int64) bool {
		g := s.build()
		dk := Build(g, randomReqs(g, reqSeed))
		if dk.IG.Validate() != nil || CheckInvariant(dk.IG) != nil {
			return false
		}
		return checkIndexExact(dk, reqSeed+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: arbitrary interleavings of edge additions, promotions and
// demotions preserve every invariant and exactness.
func TestQuickMixedOperationSequence(t *testing.T) {
	f := func(s genSpec, reqSeed, opSeed int64, ops uint8) bool {
		g := s.build()
		dk := Build(g, randomReqs(g, reqSeed))
		rng := rand.New(rand.NewSource(opSeed))
		for i := 0; i < int(ops%20)+3; i++ {
			switch rng.Intn(5) {
			case 0, 1: // edge addition (most common in practice)
				u := graph.NodeID(rng.Intn(g.NumNodes()))
				v := graph.NodeID(rng.Intn(g.NumNodes()))
				if u != v && v != g.Root() {
					dk.AddEdge(u, v)
				}
			case 4: // edge removal
				u := graph.NodeID(rng.Intn(g.NumNodes()))
				if ch := g.Children(u); len(ch) > 0 {
					if v := ch[rng.Intn(len(ch))]; v != g.Root() {
						dk.RemoveEdge(u, v)
					}
				}
			case 2: // promote a random label
				l := graph.LabelID(rng.Intn(g.Labels().Len()))
				dk.PromoteLabel(l, 1+rng.Intn(3))
			case 3: // demote everything one notch
				lo := make(Requirements)
				for l, k := range dk.LabelReqs {
					if k > 1 {
						lo[l] = k - 1
					}
				}
				dk.Demote(lo)
			}
			if dk.IG.Validate() != nil || CheckInvariant(dk.IG) != nil {
				return false
			}
		}
		return checkIndexExact(dk, opSeed+7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: subgraph addition (Algorithm 3) preserves all invariants and
// exactness for arbitrary document shapes.
func TestQuickSubgraphAddition(t *testing.T) {
	f := func(s genSpec, hs genSpec, reqSeed int64) bool {
		g := s.build()
		h := hs.build()
		dk := Build(g, randomReqs(g, reqSeed))
		if _, err := dk.AddSubgraph(h); err != nil {
			return false
		}
		if dk.IG.Validate() != nil || CheckInvariant(dk.IG) != nil {
			return false
		}
		return checkIndexExact(dk, reqSeed+3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: the broadcast algorithm is idempotent and never lowers a
// requirement.
func TestQuickBroadcastIdempotentMonotone(t *testing.T) {
	f := func(s genSpec, reqSeed int64) bool {
		g := s.build()
		p := newLabelSplitForTest(g)
		reqs := make([]int, p.NumNodes())
		rng := rand.New(rand.NewSource(reqSeed))
		for i := range reqs {
			reqs[i] = rng.Intn(5)
		}
		once := broadcast(p, reqs)
		for i := range reqs {
			if once[i] < reqs[i] {
				return false
			}
		}
		twice := broadcast(p, once)
		for i := range once {
			if twice[i] != once[i] {
				return false
			}
		}
		// Definition 3 on the label graph.
		for n := 0; n < p.NumNodes(); n++ {
			for _, par := range p.Parents(graph.NodeID(n)) {
				if once[par] < once[n]-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// newLabelSplitForTest builds the label-level quotient graph used by the
// broadcast property test.
func newLabelSplitForTest(g *graph.Graph) *quotientGraph {
	q := &quotientGraph{parents: make([][]graph.NodeID, g.Labels().Len())}
	seen := make(map[[2]graph.LabelID]bool)
	for n := 0; n < g.NumNodes(); n++ {
		b := g.Label(graph.NodeID(n))
		for _, par := range g.Parents(graph.NodeID(n)) {
			pb := g.Label(par)
			if !seen[[2]graph.LabelID{pb, b}] {
				seen[[2]graph.LabelID{pb, b}] = true
				q.parents[b] = append(q.parents[b], graph.NodeID(pb))
			}
		}
	}
	return q
}
