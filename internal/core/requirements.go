// Package core implements the D(k)-index, the paper's primary contribution:
// an adaptive structural summary whose index nodes carry individual local
// similarities k(n), constrained by the structural invariant
// k(parent) >= k(child) - 1 (Definition 3) and tuned from the query load.
//
// The package provides the construction algorithm (Algorithms 1 and 2), the
// update algorithms for data change — subgraph addition (Algorithm 3) and
// edge addition (Algorithms 4 and 5) — and the promoting and demoting
// processes for query-load change (Algorithm 6 and Section 5.4).
package core

import (
	"slices"
	"strconv"

	"dkindex/internal/graph"
)

// Requirements maps label ids to the local similarity the query load demands
// of index nodes carrying that label. Labels absent from the map default to
// requirement 0 (Section 4.2). A nil map is a valid "no requirements" value.
type Requirements map[graph.LabelID]int

// ReqsFromNames builds Requirements from label names, interning names that
// the table has not seen yet (a requirement may precede the data that uses
// the label).
func ReqsFromNames(t *graph.LabelTable, byName map[string]int) Requirements {
	r := make(Requirements, len(byName))
	for name, k := range byName {
		r[t.Intern(name)] = k
	}
	return r
}

// Get returns the requirement for label l (0 when absent).
func (r Requirements) Get(l graph.LabelID) int { return r[l] }

// Clone returns an independent copy.
func (r Requirements) Clone() Requirements {
	c := make(Requirements, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// Max returns the largest requirement (0 for empty requirements).
func (r Requirements) Max() int {
	max := 0
	for _, v := range r {
		if v > max {
			max = v
		}
	}
	return max
}

// AtMost reports whether every requirement in r is <= the corresponding
// requirement in other. It is the precondition of the demoting process
// (shrinking means lowering requirements).
func (r Requirements) AtMost(other Requirements) bool {
	for l, v := range r {
		if v > other.Get(l) {
			return false
		}
	}
	return true
}

// broadcastGraph is the adjacency view Algorithm 1 needs: for each node of
// the label-split index graph, its parent nodes.
type broadcastGraph interface {
	NumNodes() int
	Parents(n graph.NodeID) []graph.NodeID
}

// broadcast runs Algorithm 1 (the Local Similarity Broadcast Algorithm) over
// a label-split index graph whose nodes start with the query-load
// requirements in reqs. It raises parents until every edge n_i -> n_j
// satisfies req(n_i) >= req(n_j) - 1 and returns the updated per-node values.
//
// Nodes are processed in descending requirement order with a bucket queue:
// raising a parent to k-1 enqueues it in a strictly lower bucket, so each
// node is raised at most once per distinct level and the total work is O(m)
// in the number of label-split edges, as the paper states.
func broadcast(g broadcastGraph, reqs []int) []int {
	out := append([]int(nil), reqs...)
	maxK := 0
	for _, k := range out {
		if k > maxK {
			maxK = k
		}
	}
	if maxK == 0 {
		return out
	}
	buckets := make([][]graph.NodeID, maxK+1)
	for n, k := range out {
		if k > 0 {
			buckets[k] = append(buckets[k], graph.NodeID(n))
		}
	}
	for k := maxK; k >= 1; k-- {
		for i := 0; i < len(buckets[k]); i++ { // bucket may grow while iterating
			n := buckets[k][i]
			if out[n] != k {
				continue // raised past k after being enqueued; the higher pass covered it
			}
			for _, p := range g.Parents(n) {
				if out[p] < k-1 {
					out[p] = k - 1
					buckets[k-1] = append(buckets[k-1], p)
				}
			}
		}
	}
	return out
}

// SortedLabels returns the requirement labels in deterministic order; used
// for stable iteration in reports and tests.
func (r Requirements) SortedLabels() []graph.LabelID {
	out := make([]graph.LabelID, 0, len(r))
	for l := range r {
		out = append(out, l)
	}
	slices.Sort(out)
	return out
}

// String renders requirements with a label table for diagnostics.
func (r Requirements) Format(t *graph.LabelTable) string {
	s := "{"
	for i, l := range r.SortedLabels() {
		if i > 0 {
			s += " "
		}
		s += t.Name(l) + ":" + strconv.Itoa(r[l])
	}
	return s + "}"
}
