package core

import (
	"math/rand"
	"testing"

	"dkindex/internal/eval"
	"dkindex/internal/graph"
	"dkindex/internal/index"
)

func randomGraph(seed int64, nodes, labels, extraEdges int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	r := g.AddRoot()
	ids := []graph.NodeID{r}
	for i := 1; i < nodes; i++ {
		n := g.AddNode(string(rune('a' + rng.Intn(labels))))
		g.AddEdge(ids[rng.Intn(len(ids))], n)
		ids = append(ids, n)
	}
	for i := 0; i < extraEdges; i++ {
		from := ids[rng.Intn(len(ids))]
		to := ids[rng.Intn(len(ids))]
		if from != to && to != r {
			g.AddEdge(from, to)
		}
	}
	return g
}

func randomWalkQuery(rng *rand.Rand, g *graph.Graph, maxLen int) eval.Query {
	n := graph.NodeID(rng.Intn(g.NumNodes()))
	q := eval.Query{g.Label(n)}
	for len(q) < maxLen {
		ch := g.Children(n)
		if len(ch) == 0 {
			break
		}
		n = ch[rng.Intn(len(ch))]
		q = append(q, g.Label(n))
	}
	return q
}

func mustQuery(t *testing.T, g *graph.Graph, s string) eval.Query {
	t.Helper()
	q, err := eval.ParseQuery(g.Labels(), s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// sameIndexGrouping reports whether two index graphs partition the data
// nodes identically (ignoring node numbering).
func sameIndexGrouping(a, b *index.IndexGraph) bool {
	if a.NumNodes() != b.NumNodes() {
		return false
	}
	n := a.Data().NumNodes()
	if n != b.Data().NumNodes() {
		return false
	}
	fwd := make(map[graph.NodeID]graph.NodeID)
	bwd := make(map[graph.NodeID]graph.NodeID)
	for d := 0; d < n; d++ {
		ba, bb := a.IndexOf(graph.NodeID(d)), b.IndexOf(graph.NodeID(d))
		if m, ok := fwd[ba]; ok && m != bb {
			return false
		}
		if m, ok := bwd[bb]; ok && m != ba {
			return false
		}
		fwd[ba] = bb
		bwd[bb] = ba
	}
	return true
}

// --- Requirements and broadcast (Algorithm 1) ---

func TestReqsFromNames(t *testing.T) {
	tab := graph.NewLabelTable()
	r := ReqsFromNames(tab, map[string]int{"title": 2, "name": 1})
	if r.Get(tab.Lookup("title")) != 2 || r.Get(tab.Lookup("name")) != 1 {
		t.Error("requirements not recorded")
	}
	if r.Get(tab.Intern("other")) != 0 {
		t.Error("absent label should default to 0")
	}
	if r.Max() != 2 {
		t.Errorf("Max = %d, want 2", r.Max())
	}
}

func TestRequirementsAtMost(t *testing.T) {
	lo := Requirements{0: 1, 1: 0}
	hi := Requirements{0: 2, 1: 1}
	if !lo.AtMost(hi) {
		t.Error("lo should be AtMost hi")
	}
	if hi.AtMost(lo) {
		t.Error("hi should not be AtMost lo")
	}
	if !Requirements(nil).AtMost(lo) {
		t.Error("nil requirements are AtMost anything")
	}
}

func TestRequirementsCloneAndFormat(t *testing.T) {
	tab := graph.NewLabelTable()
	r := ReqsFromNames(tab, map[string]int{"b": 2, "a": 1})
	c := r.Clone()
	c[tab.Lookup("a")] = 9
	if r.Get(tab.Lookup("a")) == 9 {
		t.Error("clone shares storage")
	}
	if got := r.Format(tab); got != "{b:2 a:1}" && got != "{a:1 b:2}" {
		// order follows label ids; both labels interned in map order, so
		// accept either but require both entries present.
		t.Errorf("Format = %q", got)
	}
}

// chainGraph builds ROOT -> a -> b -> c -> e for broadcast tests.
func chainGraph() *graph.Graph {
	g := graph.New()
	r := g.AddRoot()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	e := g.AddNode("e")
	g.AddEdge(r, a)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, e)
	return g
}

func TestBroadcastRaisesAncestors(t *testing.T) {
	g := chainGraph()
	dk := Build(g, ReqsFromNames(g.Labels(), map[string]int{"e": 3}))
	ig := dk.IG
	// k(parent) >= k(child)-1 along ROOT->a->b->c->e with req(e)=3:
	// c >= 2, b >= 1, a >= 0.
	want := map[string]int{"e": 3, "c": 2, "b": 1, "a": 0, graph.RootLabel: 0}
	for n := 0; n < ig.NumNodes(); n++ {
		name := g.Labels().Name(ig.Label(graph.NodeID(n)))
		if ig.K(graph.NodeID(n)) != want[name] {
			t.Errorf("label %s: k = %d, want %d", name, ig.K(graph.NodeID(n)), want[name])
		}
	}
	if err := CheckInvariant(ig); err != nil {
		t.Error(err)
	}
}

func TestBroadcastDoesNotLower(t *testing.T) {
	g := chainGraph()
	dk := Build(g, ReqsFromNames(g.Labels(), map[string]int{"e": 1, "a": 3}))
	ig := dk.IG
	for n := 0; n < ig.NumNodes(); n++ {
		name := g.Labels().Name(ig.Label(graph.NodeID(n)))
		if name == "a" && ig.K(graph.NodeID(n)) != 3 {
			t.Errorf("a's own requirement lowered to %d", ig.K(graph.NodeID(n)))
		}
	}
}

func TestBroadcastOnSelfLoop(t *testing.T) {
	g := graph.TinyCycle() // ROOT -> a -> b -> a
	dk := Build(g, ReqsFromNames(g.Labels(), map[string]int{"a": 3}))
	if err := CheckInvariant(dk.IG); err != nil {
		t.Error(err)
	}
	// b is a parent of a, so k(b) >= 2; a is a parent of b, so k(a) >= 1 —
	// already 3. ROOT is a parent of a: k(ROOT) >= 2.
	for n := 0; n < dk.IG.NumNodes(); n++ {
		name := g.Labels().Name(dk.IG.Label(graph.NodeID(n)))
		k := dk.IG.K(graph.NodeID(n))
		switch name {
		case "a":
			if k != 3 {
				t.Errorf("a: k=%d, want 3", k)
			}
		case "b", graph.RootLabel:
			if k != 2 {
				t.Errorf("%s: k=%d, want 2", name, k)
			}
		}
	}
}

// --- Construction (Algorithm 2) ---

func TestDKWithZeroReqsIsLabelSplit(t *testing.T) {
	g := randomGraph(1, 300, 4, 80)
	dk := Build(g, nil)
	ls := index.BuildLabelSplit(g)
	if !sameIndexGrouping(dk.IG, ls) {
		t.Error("D(k) with no requirements != label-split graph")
	}
}

func TestDKWithUniformReqsIsAK(t *testing.T) {
	g := randomGraph(2, 300, 4, 80)
	for _, k := range []int{1, 2, 3} {
		reqs := make(Requirements)
		for l := 0; l < g.Labels().Len(); l++ {
			reqs[graph.LabelID(l)] = k
		}
		dk := Build(g, reqs)
		ak := index.BuildAK(g, k)
		if !sameIndexGrouping(dk.IG, ak) {
			t.Errorf("D(k) with uniform req %d != A(%d)", k, k)
		}
		if err := CheckInvariant(dk.IG); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestDKSizeBetweenLabelSplitAndAK(t *testing.T) {
	g := randomGraph(4, 500, 5, 150)
	reqs := Requirements{g.Labels().Lookup("a"): 3}
	dk := Build(g, reqs)
	ls := index.BuildLabelSplit(g)
	ak := index.BuildAK(g, 3)
	if dk.Size() < ls.NumNodes() || dk.Size() > ak.NumNodes() {
		t.Errorf("D(k) size %d outside [label-split %d, A(3) %d]",
			dk.Size(), ls.NumNodes(), ak.NumNodes())
	}
	if err := dk.IG.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConstructionFigure2Style(t *testing.T) {
	// Figure 2's scenario: one label (E) requires similarity 2, all other
	// labels require 1. The broadcast must give E's parents at least 1 and
	// its grandparents at least 0, and the resulting index must answer
	// length-2 queries ending at e without validation.
	g := graph.New()
	r := g.AddRoot()
	a1 := g.AddNode("a")
	a2 := g.AddNode("a")
	b1 := g.AddNode("b")
	b2 := g.AddNode("b")
	c1 := g.AddNode("c")
	e1 := g.AddNode("e")
	e2 := g.AddNode("e")
	g.AddEdge(r, a1)
	g.AddEdge(r, a2)
	g.AddEdge(a1, b1)
	g.AddEdge(a2, b2)
	g.AddEdge(a2, c1)
	g.AddEdge(b1, e1)
	g.AddEdge(c1, e2)

	reqs := ReqsFromNames(g.Labels(), map[string]int{"e": 2, "a": 1, "b": 1, "c": 1})
	dk := Build(g, reqs)
	if err := CheckInvariant(dk.IG); err != nil {
		t.Fatal(err)
	}
	if err := dk.IG.Validate(); err != nil {
		t.Fatal(err)
	}
	// e1 (under b) and e2 (under c) must be separated (2-bisimilarity).
	if dk.IG.IndexOf(e1) == dk.IG.IndexOf(e2) {
		t.Error("e nodes with different grandparent structure not separated at req 2")
	}
	// Queries of length 2 ending at e are sound without validation.
	for _, qs := range []string{"a.b.e", "a.c.e"} {
		q := mustQuery(t, g, qs)
		truth, _ := eval.Data(g, q)
		raw, _ := eval.IndexNoValidation(dk.IG, q)
		if !eval.SameResult(raw, truth) {
			t.Errorf("query %s unsound without validation: %v != %v", qs, raw, truth)
		}
	}
}

func TestDKSoundForWorkloadQueries(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed+10, 300, 4, 90)
		rng := rand.New(rand.NewSource(seed))
		var queries []eval.Query
		reqs := make(Requirements)
		for i := 0; i < 20; i++ {
			q := randomWalkQuery(rng, g, 2+rng.Intn(4))
			queries = append(queries, q)
			last := q[len(q)-1]
			if reqs[last] < q.Length() {
				reqs[last] = q.Length()
			}
		}
		dk := Build(g, reqs)
		if err := CheckInvariant(dk.IG); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			truth, _ := eval.Data(g, q)
			res, cost := eval.Index(dk.IG, q)
			if !eval.SameResult(res, truth) {
				t.Fatalf("seed %d: D(k) wrong on %s", seed, q.Format(g.Labels()))
			}
			if cost.Validations != 0 {
				t.Fatalf("seed %d: D(k) validated workload query %s", seed, q.Format(g.Labels()))
			}
		}
	}
}

// --- Edge addition (Algorithms 4 and 5) ---

func TestUpdateLocalSimilarityFigure3Style(t *testing.T) {
	// Figure 3's scenario: D already has a parent labeled c; a new edge from
	// another c-class node into D does not change D's label parents, so D's
	// similarity stays at least 1 instead of dropping to 0.
	g := graph.New()
	r := g.AddRoot()
	c1 := g.AddNode("c")
	c2 := g.AddNode("c")
	c3 := g.AddNode("c")
	d1 := g.AddNode("d")
	d2 := g.AddNode("d")
	e1 := g.AddNode("e")
	e2 := g.AddNode("e")
	g.AddEdge(r, c1)
	g.AddEdge(r, c2)
	g.AddEdge(r, c3)
	g.AddEdge(c1, d1)
	g.AddEdge(c2, d2)
	g.AddEdge(d1, e1)
	g.AddEdge(d2, e2)

	reqs := ReqsFromNames(g.Labels(), map[string]int{"e": 3, "d": 2})
	dk := Build(g, reqs)
	dNode := dk.IG.IndexOf(d2)
	if dk.IG.K(dNode) < 2 {
		t.Fatalf("precondition: k(D)=%d, want >= 2", dk.IG.K(dNode))
	}
	sizeBefore := dk.Size()
	dk.AddEdge(c3, d2)
	if dk.Size() != sizeBefore {
		t.Errorf("D(k) edge update changed index size %d -> %d", sizeBefore, dk.Size())
	}
	// The new parent has label c, which D already had: similarity should
	// stay at least 1 (paper: "we therefore reset D's local similarity to 1").
	if got := dk.IG.K(dk.IG.IndexOf(d2)); got < 1 {
		t.Errorf("k(D) after c->D edge = %d, want >= 1", got)
	}
	if err := CheckInvariant(dk.IG); err != nil {
		t.Error(err)
	}
}

func TestUpdateLocalSimilarityWorstCase(t *testing.T) {
	// A parent with a label V has never seen forces k_N = 0.
	g := graph.New()
	r := g.AddRoot()
	x := g.AddNode("x")
	y1 := g.AddNode("y")
	y2 := g.AddNode("y")
	z := g.AddNode("z")
	g.AddEdge(r, x)
	g.AddEdge(r, y1)
	g.AddEdge(r, y2)
	g.AddEdge(y1, z)

	dk := Build(g, ReqsFromNames(g.Labels(), map[string]int{"z": 2}))
	zNode := dk.IG.IndexOf(z)
	if dk.IG.K(zNode) != 2 {
		t.Fatalf("precondition: k(z)=%d", dk.IG.K(zNode))
	}
	kn := UpdateLocalSimilarity(dk.IG, dk.IG.IndexOf(x), zNode)
	if kn != 0 {
		t.Errorf("new x->z edge should force k_N=0, got %d", kn)
	}
	// A second y parent keeps similarity 1 at least: label path "y" into z
	// already existed.
	kn = UpdateLocalSimilarity(dk.IG, dk.IG.IndexOf(y2), zNode)
	if kn < 1 {
		t.Errorf("new y->z edge should keep k_N >= 1, got %d", kn)
	}
}

func TestAddEdgeDuplicateIsNoOp(t *testing.T) {
	g := graph.FigureOneMovies()
	dk := Build(g, ReqsFromNames(g.Labels(), map[string]int{"title": 2}))
	before := dk.IG.K(dk.IG.IndexOf(7))
	dk.AddEdge(2, 7) // existing data edge director->movie
	if dk.IG.K(dk.IG.IndexOf(7)) != before {
		t.Error("duplicate edge changed similarities")
	}
}

func TestAddEdgeCorrectnessProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed+30, 250, 4, 60)
		rng := rand.New(rand.NewSource(seed * 7))
		reqs := make(Requirements)
		var queries []eval.Query
		for i := 0; i < 15; i++ {
			q := randomWalkQuery(rng, g, 2+rng.Intn(4))
			queries = append(queries, q)
			if reqs[q[len(q)-1]] < q.Length() {
				reqs[q[len(q)-1]] = q.Length()
			}
		}
		dk := Build(g, reqs)
		sizeBefore := dk.Size()
		added := 0
		for added < 30 {
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			v := graph.NodeID(rng.Intn(g.NumNodes()))
			if u == v || v == g.Root() || g.HasEdge(u, v) {
				continue
			}
			dk.AddEdge(u, v)
			added++
		}
		if dk.Size() != sizeBefore {
			t.Fatalf("seed %d: D(k) size changed by edge updates", seed)
		}
		if err := CheckInvariant(dk.IG); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := dk.IG.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Both the original workload queries and fresh random walks must
		// evaluate correctly with validation.
		for i := 0; i < 15; i++ {
			queries = append(queries, randomWalkQuery(rng, g, 2+rng.Intn(4)))
		}
		for _, q := range queries {
			truth, _ := eval.Data(g, q)
			res, _ := eval.Index(dk.IG, q)
			if !eval.SameResult(res, truth) {
				t.Fatalf("seed %d: D(k) after updates wrong on %s", seed, q.Format(g.Labels()))
			}
		}
	}
}

// The decisive soundness property for Algorithm 4: whenever evaluation skips
// validation (matched node similarity covers the query), the unvalidated
// result must equal the truth — even after many edge updates.
func TestAddEdgeSoundnessOfClaimedSimilarities(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed+50, 250, 4, 60)
		rng := rand.New(rand.NewSource(seed * 13))
		reqs := make(Requirements)
		for l := 0; l < g.Labels().Len(); l++ {
			reqs[graph.LabelID(l)] = 2
		}
		dk := Build(g, reqs)
		added := 0
		for added < 25 {
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			v := graph.NodeID(rng.Intn(g.NumNodes()))
			if u == v || v == g.Root() || g.HasEdge(u, v) {
				continue
			}
			dk.AddEdge(u, v)
			added++
		}
		for qi := 0; qi < 40; qi++ {
			q := randomWalkQuery(rng, g, 2+rng.Intn(4))
			truth, _ := eval.Data(g, q)
			res, cost := eval.Index(dk.IG, q)
			if !eval.SameResult(res, truth) {
				t.Fatalf("seed %d: validated result wrong on %s", seed, q.Format(g.Labels()))
			}
			if cost.Validations == 0 {
				// Every matched node claimed soundness; verify the claim.
				raw, _ := eval.IndexNoValidation(dk.IG, q)
				if !eval.SameResult(raw, truth) {
					t.Fatalf("seed %d: claimed similarity unsound on %s", seed, q.Format(g.Labels()))
				}
			}
		}
	}
}

func TestRemoveEdgeCorrectnessProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(seed+700, 250, 4, 80)
		rng := rand.New(rand.NewSource(seed * 11))
		reqs := make(Requirements)
		for l := 0; l < g.Labels().Len(); l++ {
			reqs[graph.LabelID(l)] = 2
		}
		dk := Build(g, reqs)
		sizeBefore := dk.Size()
		// Interleave removals with additions.
		removed := 0
		for removed < 25 {
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			ch := g.Children(u)
			if len(ch) == 0 {
				continue
			}
			v := ch[rng.Intn(len(ch))]
			if v == g.Root() {
				continue
			}
			dk.RemoveEdge(u, v)
			removed++
			if rng.Intn(2) == 0 {
				a := graph.NodeID(rng.Intn(g.NumNodes()))
				b := graph.NodeID(rng.Intn(g.NumNodes()))
				if a != b && b != g.Root() {
					dk.AddEdge(a, b)
				}
			}
		}
		if dk.Size() != sizeBefore {
			t.Fatalf("seed %d: removal changed index size", seed)
		}
		if err := dk.IG.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckInvariant(dk.IG); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for qi := 0; qi < 30; qi++ {
			q := randomWalkQuery(rng, g, 2+rng.Intn(4))
			truth, _ := eval.Data(g, q)
			res, cost := eval.Index(dk.IG, q)
			if !eval.SameResult(res, truth) {
				t.Fatalf("seed %d: wrong after removals on %s", seed, q.Format(g.Labels()))
			}
			if cost.Validations == 0 {
				raw, _ := eval.IndexNoValidation(dk.IG, q)
				if !eval.SameResult(raw, truth) {
					t.Fatalf("seed %d: unsound claim after removals on %s", seed, q.Format(g.Labels()))
				}
			}
		}
	}
}

func TestRemoveEdgeMissingIsNoOp(t *testing.T) {
	g := graph.FigureOneMovies()
	dk := Build(g, ReqsFromNames(g.Labels(), map[string]int{"title": 2}))
	before := dk.IG.K(dk.IG.IndexOf(15))
	dk.RemoveEdge(15, 2) // no such edge
	if dk.IG.K(dk.IG.IndexOf(15)) != before {
		t.Error("no-op removal changed similarities")
	}
	if err := dk.IG.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdgeOneLevelProbe(t *testing.T) {
	// Two c-parents with the same label: deleting one keeps similarity 1.
	g := graph.New()
	r := g.AddRoot()
	c1 := g.AddNode("c")
	c2 := g.AddNode("c")
	d := g.AddNode("d")
	e := g.AddNode("e")
	g.AddEdge(r, c1)
	g.AddEdge(r, c2)
	g.AddEdge(c1, d)
	g.AddEdge(c2, d)
	g.AddEdge(d, e)
	dk := Build(g, ReqsFromNames(g.Labels(), map[string]int{"e": 3}))
	dNode := dk.IG.IndexOf(d)
	if dk.IG.K(dNode) < 2 {
		t.Fatalf("precondition: k(d)=%d", dk.IG.K(dNode))
	}
	dk.RemoveEdge(c1, d)
	if got := dk.IG.K(dk.IG.IndexOf(d)); got != 1 {
		t.Errorf("k(d) after removing one of two c-parents = %d, want 1", got)
	}
	if err := CheckInvariant(dk.IG); err != nil {
		t.Fatal(err)
	}
}
