package core

import (
	"sort"

	"dkindex/internal/graph"
	"dkindex/internal/index"
)

// Promote raises the local similarity of index node v to at least kn
// (Algorithm 6, the promoting process). Parents are first promoted
// recursively to kn-1, then v's extent is split against Succ of each parent
// until stable; every fragment receives similarity kn. Promotion is the
// maintenance operation that recovers evaluation performance after
// edge-addition updates have decayed similarities (Section 5.3).
//
// It returns statistics about the work performed (fragments created, index
// nodes visited).
func (dk *DK) Promote(v graph.NodeID, kn int) index.UpdateStats {
	var stats index.UpdateStats
	dk.promote(v, kn, make(map[graph.NodeID]int), &stats)
	return stats
}

func (dk *DK) promote(v graph.NodeID, kn int, visiting map[graph.NodeID]int, stats *index.UpdateStats) {
	ig := dk.IG
	stats.IndexNodesVisited++
	if kn <= 0 || ig.K(v) >= kn {
		return
	}
	// Cycle guard: on cyclic index graphs the recursion can reach v again
	// through its own ancestry. An in-progress promotion at an equal or
	// higher target already covers the request.
	if prev, ok := visiting[v]; ok && prev >= kn {
		return
	}
	visiting[v] = kn

	// Step 2: promote every parent to kn-1. Promoting one parent can split
	// *another* parent of v (when it is also an ancestor of the first), and
	// the new fragment inherits the pre-promotion similarity — so re-scan
	// the current parent list until every parent meets the bar or no
	// further progress is possible (in-progress cycle promotions finish
	// later in the enclosing call).
	attempted := make(map[graph.NodeID]bool)
	for {
		progressed := false
		for _, w := range ig.Parents(v) {
			if ig.K(w) >= kn-1 || attempted[w] {
				continue // attempted parents that stayed low are cycle-capped;
				// the final per-fragment claim accounts for them
			}
			if prev, ok := visiting[w]; ok && prev >= kn-1 {
				continue // cycle: an enclosing call is promoting w
			}
			attempted[w] = true
			dk.promote(w, kn-1, visiting, stats)
			progressed = true
		}
		if !progressed {
			break
		}
	}

	// Step 3: split extent(v) into V ∩ Succ(W) and V − Succ(W) for each
	// parent W, applying every splitter to every fragment produced so far.
	// When v's label nests under itself, fragments of v become parents of
	// one another, so the splitter set is re-gathered from the current
	// fragments until no split fires: every fragment ends up contained in
	// Succ(W) for each of its parents W — the stability Theorem 1 needs.
	frags := []graph.NodeID{v}
	for {
		changed := false
		seen := make(map[graph.NodeID]bool)
		var splitters []graph.NodeID
		for _, f := range frags {
			for _, w := range ig.Parents(f) {
				if !seen[w] {
					seen[w] = true
					splitters = append(splitters, w)
				}
			}
		}
		for _, w := range splitters {
			for i := 0; i < len(frags); i++ {
				if nf, ok := ig.SplitBySuccOf(frags[i], w); ok {
					frags = append(frags, nf)
					stats.IndexNodesCreated++
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// Claim kn on each fragment, capped by what its parents actually
	// provide: a parent skipped by the cycle guard may still be below kn-1,
	// and a node's similarity can never soundly exceed its weakest parent's
	// plus one. Claims are raised to a fixpoint because fragments may parent
	// each other (their mutual stability is what makes the mutual raise
	// sound); raising never drops an established similarity.
	for {
		changed := false
		for _, f := range frags {
			claim := kn
			for _, w := range ig.Parents(f) {
				if limit := ig.K(w) + 1; limit < claim {
					claim = limit
				}
			}
			if claim > ig.K(f) {
				ig.SetK(f, claim)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	delete(visiting, v)
}

// PromoteBatch promotes a set of index nodes to new local similarities. As
// the paper recommends, nodes with higher targets are promoted first: their
// recursive ancestor promotions subsume part of the work for lower targets.
func (dk *DK) PromoteBatch(targets map[graph.NodeID]int) index.UpdateStats {
	type target struct {
		n graph.NodeID
		k int
	}
	order := make([]target, 0, len(targets))
	for n, k := range targets {
		order = append(order, target{n, k})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].k != order[j].k {
			return order[i].k > order[j].k
		}
		return order[i].n < order[j].n
	})
	var stats index.UpdateStats
	for _, t := range order {
		stats.Add(dk.Promote(t.n, t.k))
	}
	return stats
}

// PromoteLabel promotes every index node carrying the given label to local
// similarity kn and records the new query-load requirement. This is the
// label-granularity tuning entry point: when the query load starts reaching
// a label through longer paths, promote it.
func (dk *DK) PromoteLabel(l graph.LabelID, kn int) index.UpdateStats {
	ig := dk.IG
	var stats index.UpdateStats
	// When the label participates in a cycle of the label graph (an element
	// nesting under itself through other labels), a single promotion pass
	// can only raise similarities by the level its parents already provide.
	// Each additional pass soundly lifts the cycle one level further, so
	// iterate until the target is met or a pass makes no progress.
	for pass := 0; pass <= kn+1; pass++ {
		targets := make(map[graph.NodeID]int)
		for n := 0; n < ig.NumNodes(); n++ {
			if ig.Label(graph.NodeID(n)) == l && ig.K(graph.NodeID(n)) < kn {
				targets[graph.NodeID(n)] = kn
			}
		}
		if len(targets) == 0 {
			break
		}
		before := labelMinK(ig, l)
		stats.Add(dk.PromoteBatch(targets))
		if labelMinK(ig, l) <= before {
			break // no progress: structurally capped (e.g. tight cycles)
		}
	}
	if dk.LabelReqs == nil {
		dk.LabelReqs = make(Requirements)
	}
	if dk.LabelReqs[l] < kn {
		dk.LabelReqs[l] = kn
	}
	return stats
}

// labelMinK returns the smallest similarity among index nodes with label l
// (or a large value when the label is absent).
func labelMinK(ig *index.IndexGraph, l graph.LabelID) int {
	min := index.Exact
	for n := 0; n < ig.NumNodes(); n++ {
		if ig.Label(graph.NodeID(n)) == l && ig.K(graph.NodeID(n)) < min {
			min = ig.K(graph.NodeID(n))
		}
	}
	return min
}

// Demote shrinks the index for a lowered set of query-load requirements
// (Section 5.4): the current index graph, being a refinement of the target
// D(k)-index, is treated as a data graph and the target is constructed from
// it directly (Theorem 2) — extents of merged index nodes are unioned, and
// no reference to the data graph is needed.
//
// The returned index replaces the receiver's contents. Requirements that
// exceed what the current index actually provides are clamped (demotion can
// only lower similarities; use Promote to raise them).
func (dk *DK) Demote(newReqs Requirements) {
	nd := BuildFromIndex(dk.IG, newReqs)
	dk.IG = nd.IG
	dk.LabelReqs = nd.LabelReqs
	dk.Stats = nd.Stats
}
