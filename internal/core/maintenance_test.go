package core

import (
	"math/rand"
	"testing"

	"dkindex/internal/eval"
	"dkindex/internal/graph"
	"dkindex/internal/index"
)

// --- Promoting (Algorithm 6) ---

func TestPromoteRestoresSoundness(t *testing.T) {
	g := graph.FigureOneMovies()
	title := g.Labels().Lookup("title")
	dk := Build(g, nil) // label split: everything at k=0
	q := mustQuery(t, g, "director.movie.title")
	truth, _ := eval.Data(g, q)
	raw, _ := eval.IndexNoValidation(dk.IG, q)
	if eval.SameResult(raw, truth) {
		t.Fatal("precondition: label split should over-answer director.movie.title")
	}
	dk.PromoteLabel(title, 2)
	if err := CheckInvariant(dk.IG); err != nil {
		t.Fatal(err)
	}
	if err := dk.IG.Validate(); err != nil {
		t.Fatal(err)
	}
	raw, _ = eval.IndexNoValidation(dk.IG, q)
	if !eval.SameResult(raw, truth) {
		t.Errorf("after PromoteLabel(title,2): %v != %v", raw, truth)
	}
	if dk.LabelReqs[title] != 2 {
		t.Error("PromoteLabel did not record the new requirement")
	}
}

func TestPromoteIsIdempotent(t *testing.T) {
	g := graph.FigureOneMovies()
	title := g.Labels().Lookup("title")
	dk := Build(g, nil)
	dk.PromoteLabel(title, 2)
	size := dk.Size()
	stats := dk.PromoteLabel(title, 2)
	if dk.Size() != size {
		t.Error("second identical promotion changed the index")
	}
	if stats.IndexNodesCreated != 0 {
		t.Error("second identical promotion created nodes")
	}
}

func TestPromoteSoundnessProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed+70, 250, 4, 60)
		rng := rand.New(rand.NewSource(seed * 3))
		dk := Build(g, nil)
		// Promote three random labels to random levels.
		for i := 0; i < 3; i++ {
			l := graph.LabelID(rng.Intn(g.Labels().Len()))
			dk.PromoteLabel(l, 1+rng.Intn(3))
		}
		if err := CheckInvariant(dk.IG); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := dk.IG.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for qi := 0; qi < 30; qi++ {
			q := randomWalkQuery(rng, g, 2+rng.Intn(4))
			truth, _ := eval.Data(g, q)
			res, cost := eval.Index(dk.IG, q)
			if !eval.SameResult(res, truth) {
				t.Fatalf("seed %d: validated result wrong after promote on %s", seed, q.Format(g.Labels()))
			}
			if cost.Validations == 0 {
				raw, _ := eval.IndexNoValidation(dk.IG, q)
				if !eval.SameResult(raw, truth) {
					t.Fatalf("seed %d: promote claimed unsound similarity on %s", seed, q.Format(g.Labels()))
				}
			}
		}
	}
}

func TestPromoteAfterUpdatesRecoversPerformance(t *testing.T) {
	g := randomGraph(77, 400, 4, 100)
	rng := rand.New(rand.NewSource(42))
	reqs := make(Requirements)
	var queries []eval.Query
	for i := 0; i < 20; i++ {
		q := randomWalkQuery(rng, g, 2+rng.Intn(4))
		queries = append(queries, q)
		if reqs[q[len(q)-1]] < q.Length() {
			reqs[q[len(q)-1]] = q.Length()
		}
	}
	dk := Build(g, reqs)

	costOf := func() (total, validated int) {
		for _, q := range queries {
			_, c := eval.Index(dk.IG, q)
			total += c.Total()
			validated += c.DataNodesValidated
		}
		return total, validated
	}
	fresh, freshVal := costOf()
	if freshVal != 0 {
		t.Fatal("precondition: workload-tuned D(k) should not validate")
	}

	added := 0
	for added < 40 {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if u == v || v == g.Root() || g.HasEdge(u, v) {
			continue
		}
		dk.AddEdge(u, v)
		added++
	}
	decayed, decayedVal := costOf()

	// Promote every label back to its requirement.
	for l, k := range reqs {
		dk.PromoteLabel(l, k)
	}
	if err := CheckInvariant(dk.IG); err != nil {
		t.Fatal(err)
	}
	recovered, recoveredVal := costOf()
	t.Logf("cost: fresh=%d decayed=%d (validation %d) recovered=%d (validation %d)",
		fresh, decayed, decayedVal, recovered, recoveredVal)

	if decayedVal == 0 {
		t.Log("note: updates did not trigger validation on this seed")
	}
	// Promotion's guarantee is eliminating validation for the tuned
	// workload; total cost can trade validation for index size (the paper's
	// size-vs-accuracy tradeoff of Figures 6/7).
	if recoveredVal != 0 {
		t.Errorf("promotion left %d validation visits", recoveredVal)
	}
	// After promotion, workload queries need no validation again.
	for _, q := range queries {
		truth, _ := eval.Data(g, q)
		res, cost := eval.Index(dk.IG, q)
		if !eval.SameResult(res, truth) {
			t.Fatalf("wrong result after recovery on %s", q.Format(g.Labels()))
		}
		if cost.Validations != 0 {
			t.Errorf("query %s still validates after promotion", q.Format(g.Labels()))
		}
	}
}

func TestPromoteOnCyclicGraph(t *testing.T) {
	// Two parallel cycles with identical labels plus a distinguishing extra
	// parent: promotion must terminate and keep all claims sound.
	g := graph.New()
	r := g.AddRoot()
	a1 := g.AddNode("a")
	b1 := g.AddNode("b")
	a2 := g.AddNode("a")
	b2 := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(r, a1)
	g.AddEdge(a1, b1)
	g.AddEdge(b1, a1)
	g.AddEdge(r, c)
	g.AddEdge(c, a2)
	g.AddEdge(a2, b2)
	g.AddEdge(b2, a2)

	dk := Build(g, nil)
	for _, l := range []string{"a", "b"} {
		dk.PromoteLabel(g.Labels().Lookup(l), 3)
	}
	if err := CheckInvariant(dk.IG); err != nil {
		t.Fatal(err)
	}
	if err := dk.IG.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for qi := 0; qi < 40; qi++ {
		q := randomWalkQuery(rng, g, 2+rng.Intn(4))
		truth, _ := eval.Data(g, q)
		res, cost := eval.Index(dk.IG, q)
		if !eval.SameResult(res, truth) {
			t.Fatalf("cyclic promote: wrong result on %s", q.Format(g.Labels()))
		}
		if cost.Validations == 0 {
			raw, _ := eval.IndexNoValidation(dk.IG, q)
			if !eval.SameResult(raw, truth) {
				t.Fatalf("cyclic promote: unsound claim on %s", q.Format(g.Labels()))
			}
		}
	}
}

func TestPromoteBatchOrdersByTarget(t *testing.T) {
	g := chainGraph() // ROOT -> a -> b -> c -> e
	dk := Build(g, nil)
	e := dk.IG.IndexOf(4)
	c := dk.IG.IndexOf(3)
	dk.PromoteBatch(map[graph.NodeID]int{c: 1, e: 3})
	if err := CheckInvariant(dk.IG); err != nil {
		t.Fatal(err)
	}
	if got := dk.IG.K(dk.IG.IndexOf(4)); got < 3 {
		t.Errorf("k(e) = %d, want >= 3", got)
	}
	if got := dk.IG.K(dk.IG.IndexOf(3)); got < 2 {
		t.Errorf("k(c) = %d, want >= 2 (raised by e's promotion)", got)
	}
}

// --- Demoting (Section 5.4) ---

func TestDemoteMatchesFreshBuild(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed+90, 300, 4, 80)
		hi := make(Requirements)
		lo := make(Requirements)
		rng := rand.New(rand.NewSource(seed))
		for l := 0; l < g.Labels().Len(); l++ {
			h := rng.Intn(4)
			hi[graph.LabelID(l)] = h
			if h > 0 {
				lo[graph.LabelID(l)] = rng.Intn(h)
			}
		}
		dk := Build(g, hi)
		sizeHi := dk.Size()
		dk.Demote(lo)
		fresh := Build(g, lo)
		if !sameIndexGrouping(dk.IG, fresh.IG) {
			t.Fatalf("seed %d: demoted index != fresh D(k) (%d vs %d nodes)",
				seed, dk.Size(), fresh.Size())
		}
		if dk.Size() > sizeHi {
			t.Fatalf("seed %d: demotion grew the index", seed)
		}
		if err := CheckInvariant(dk.IG); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Demoted similarities must equal the fresh build's.
		for d := 0; d < g.NumNodes(); d++ {
			a := dk.IG.K(dk.IG.IndexOf(graph.NodeID(d)))
			b := fresh.IG.K(fresh.IG.IndexOf(graph.NodeID(d)))
			if a != b {
				t.Fatalf("seed %d: similarity mismatch at data node %d: %d vs %d", seed, d, a, b)
			}
		}
	}
}

func TestDemoteAfterUpdatesStaysSound(t *testing.T) {
	g := randomGraph(123, 300, 4, 80)
	rng := rand.New(rand.NewSource(9))
	reqs := make(Requirements)
	for l := 0; l < g.Labels().Len(); l++ {
		reqs[graph.LabelID(l)] = 3
	}
	dk := Build(g, reqs)
	added := 0
	for added < 20 {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if u == v || v == g.Root() || g.HasEdge(u, v) {
			continue
		}
		dk.AddEdge(u, v)
		added++
	}
	lo := make(Requirements)
	for l := range reqs {
		lo[l] = 1
	}
	dk.Demote(lo)
	if err := CheckInvariant(dk.IG); err != nil {
		t.Fatal(err)
	}
	if err := dk.IG.Validate(); err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 40; qi++ {
		q := randomWalkQuery(rng, g, 2+rng.Intn(4))
		truth, _ := eval.Data(g, q)
		res, cost := eval.Index(dk.IG, q)
		if !eval.SameResult(res, truth) {
			t.Fatalf("demote after updates: wrong result on %s", q.Format(g.Labels()))
		}
		if cost.Validations == 0 {
			raw, _ := eval.IndexNoValidation(dk.IG, q)
			if !eval.SameResult(raw, truth) {
				t.Fatalf("demote after updates: unsound claim on %s", q.Format(g.Labels()))
			}
		}
	}
}

// --- Subgraph addition (Algorithm 3) ---

// buildMiniDoc builds a small document graph with its own label table.
func buildMiniDoc(seed int64, nodes int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	h := graph.New()
	r := h.AddRoot()
	ids := []graph.NodeID{r}
	for i := 1; i < nodes; i++ {
		n := h.AddNode(string(rune('a' + rng.Intn(4))))
		h.AddEdge(ids[rng.Intn(len(ids))], n)
		ids = append(ids, n)
	}
	return h
}

func TestAddSubgraphMatchesFreshBuild(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed+200, 250, 4, 60)
		h := buildMiniDoc(seed, 60)
		reqs := make(Requirements)
		rng := rand.New(rand.NewSource(seed))
		for l := 0; l < g.Labels().Len(); l++ {
			reqs[graph.LabelID(l)] = rng.Intn(3)
		}

		// From scratch: graft the same subgraph onto a clone and rebuild.
		// (Cloned before AddSubgraph mutates g.)
		g2 := cloneAndGraft(g, h)
		fresh := Build(g2, reqs)

		// Incremental: Algorithm 3.
		dk := Build(g, reqs)
		mapping, err := dk.AddSubgraph(h)
		if err != nil {
			t.Fatal(err)
		}
		if err := dk.IG.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckInvariant(dk.IG); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		if !sameIndexGrouping(dk.IG, fresh.IG) {
			t.Fatalf("seed %d: subgraph addition (%d nodes) != fresh build (%d nodes)",
				seed, dk.Size(), fresh.Size())
		}
		// Mapping sanity: labels preserved, root maps to root.
		if mapping[h.Root()] != dk.IG.Data().Root() {
			t.Error("subgraph root not identified with data root")
		}
		for n := 0; n < h.NumNodes(); n++ {
			if graph.NodeID(n) == h.Root() {
				continue
			}
			if dk.IG.Data().LabelName(mapping[n]) != h.LabelName(graph.NodeID(n)) {
				t.Fatalf("seed %d: label mismatch for grafted node %d", seed, n)
			}
		}
	}
}

// cloneAndGraft reproduces AddSubgraph's graft on a fresh copy, in the same
// node order, so node ids align with the incremental path.
func cloneAndGraft(g, h *graph.Graph) *graph.Graph {
	g2 := g.Clone()
	mapping := make([]graph.NodeID, h.NumNodes())
	for n := 0; n < h.NumNodes(); n++ {
		if graph.NodeID(n) == h.Root() {
			mapping[n] = g2.Root()
			continue
		}
		mapping[n] = g2.AddNodeID(g2.Labels().Intern(h.LabelName(graph.NodeID(n))))
	}
	for n := 0; n < h.NumNodes(); n++ {
		for _, c := range h.Children(graph.NodeID(n)) {
			g2.AddEdge(mapping[n], mapping[c])
		}
	}
	return g2
}

func TestAddSubgraphWithNewLabels(t *testing.T) {
	g := graph.FigureOneMovies()
	dk := Build(g, ReqsFromNames(g.Labels(), map[string]int{"title": 2}))
	h := graph.New()
	hr := h.AddRoot()
	s := h.AddNode("series")  // label unknown to g
	e := h.AddNode("episode") // label unknown to g
	ti := h.AddNode("title")  // existing label
	h.AddEdge(hr, s)
	h.AddEdge(s, e)
	h.AddEdge(e, ti)
	if _, err := dk.AddSubgraph(h); err != nil {
		t.Fatal(err)
	}
	if err := dk.IG.Validate(); err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, g, "series.episode.title")
	truth, _ := eval.Data(dk.IG.Data(), q)
	if len(truth) != 1 {
		t.Fatalf("grafted path not found: %v", truth)
	}
	res, _ := eval.Index(dk.IG, q)
	if !eval.SameResult(res, truth) {
		t.Errorf("index result %v != truth %v", res, truth)
	}
}

func TestAddSubgraphErrors(t *testing.T) {
	g := graph.New() // no root
	g.AddNode("x")
	dk := &DK{IG: index.BuildLabelSplit(g)}
	if _, err := dk.AddSubgraph(graph.FigureOneMovies()); err == nil {
		t.Error("expected error for rootless data graph")
	}
	g2 := graph.FigureOneMovies()
	dk2 := Build(g2, nil)
	h := graph.New() // rootless subgraph
	h.AddNode("y")
	if _, err := dk2.AddSubgraph(h); err == nil {
		t.Error("expected error for rootless subgraph")
	}
}

func TestAddSubgraphSoundAfterPriorUpdates(t *testing.T) {
	g := randomGraph(321, 250, 4, 60)
	rng := rand.New(rand.NewSource(17))
	reqs := make(Requirements)
	for l := 0; l < g.Labels().Len(); l++ {
		reqs[graph.LabelID(l)] = 2
	}
	dk := Build(g, reqs)
	added := 0
	for added < 15 {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if u == v || v == g.Root() || g.HasEdge(u, v) {
			continue
		}
		dk.AddEdge(u, v)
		added++
	}
	if _, err := dk.AddSubgraph(buildMiniDoc(5, 50)); err != nil {
		t.Fatal(err)
	}
	if err := dk.IG.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariant(dk.IG); err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 40; qi++ {
		q := randomWalkQuery(rng, dk.IG.Data(), 2+rng.Intn(4))
		truth, _ := eval.Data(dk.IG.Data(), q)
		res, cost := eval.Index(dk.IG, q)
		if !eval.SameResult(res, truth) {
			t.Fatalf("subgraph after updates: wrong result on %s", q.Format(g.Labels()))
		}
		if cost.Validations == 0 {
			raw, _ := eval.IndexNoValidation(dk.IG, q)
			if !eval.SameResult(raw, truth) {
				t.Fatalf("subgraph after updates: unsound claim on %s", q.Format(g.Labels()))
			}
		}
	}
}

// --- LowerToInvariant ---

func TestLowerToInvariant(t *testing.T) {
	g := chainGraph()
	dk := Build(g, ReqsFromNames(g.Labels(), map[string]int{"e": 3}))
	// Manually break the invariant: zero out c's similarity.
	cNode := dk.IG.IndexOf(3)
	dk.IG.SetK(cNode, 0)
	if err := CheckInvariant(dk.IG); err == nil {
		t.Fatal("precondition: invariant should be broken")
	}
	LowerToInvariant(dk.IG)
	if err := CheckInvariant(dk.IG); err != nil {
		t.Fatal(err)
	}
	if got := dk.IG.K(dk.IG.IndexOf(4)); got != 1 {
		t.Errorf("k(e) after lowering = %d, want 1", got)
	}
}
