package core

// Copy-on-write support for snapshot-isolated serving: every mutating
// operation of the facade works on a private copy of exactly the layers it
// mutates, then publishes the finished copy atomically. Three grades keep
// the copies as cheap as the operation allows.

// CloneForUpdate returns a copy with private data and index graphs but the
// label table still shared. Edge updates (AddEdge, RemoveEdge) mutate both
// graph layers in place yet never intern labels, so sharing the table is
// safe as long as every interning operation uses CloneDetached.
func (dk *DK) CloneForUpdate() *DK {
	g := dk.IG.Data().Clone()
	return &DK{IG: dk.IG.CloneOnto(g), LabelReqs: dk.LabelReqs.Clone()}
}

// CloneDetached returns a copy sharing nothing with the receiver: label
// table, data graph and index graph are all private. Required by operations
// that may intern new labels (AddSubgraph, requirement resolution by name).
func (dk *DK) CloneDetached() *DK {
	g := dk.IG.Data().CloneDetached()
	return &DK{IG: dk.IG.CloneOnto(g), LabelReqs: dk.LabelReqs.Clone()}
}

// CloneIndex returns a copy with a private index graph over the shared data
// graph. Promotion mutates only the summary (splits and SetK), never the
// data, so this is the cheap grade for Promote/PromoteLabel.
func (dk *DK) CloneIndex() *DK {
	return &DK{IG: dk.IG.Clone(), LabelReqs: dk.LabelReqs.Clone()}
}
