package core

import (
	"fmt"
	"time"

	"dkindex/internal/graph"
	"dkindex/internal/index"
	"dkindex/internal/partition"
	"dkindex/internal/workpool"
)

// DK is a D(k)-index: a structural summary whose index nodes carry
// individual local similarities. It wraps an index.IndexGraph (which stores
// extents, adjacency and per-node k) together with the per-label
// requirements the index was tuned for.
type DK struct {
	// IG is the underlying index graph. Its K(n) values are the local
	// similarities: node n answers path expressions of length <= K(n)
	// soundly, longer ones require validation against the data graph.
	IG *index.IndexGraph
	// LabelReqs records the query-load requirements (pre-broadcast) the
	// index currently targets.
	LabelReqs Requirements
	// Stats describes the construction that produced this index. Zero for
	// indexes that were cloned or decoded rather than built.
	Stats BuildStats
}

// BuildStats are the construction-cost counters of one build job, surfaced
// through the observability layer (/metrics, build events) and dkbench.
type BuildStats struct {
	// Rounds is the number of refinement rounds executed (k_max after
	// broadcast; 0 when the label-split partition already satisfies every
	// requirement).
	Rounds int
	// Splits is the number of index nodes created by refinement: final
	// blocks minus label-split blocks. Refinement only splits, so this also
	// bounds the per-round split total.
	Splits int
	// PeakBlocks is the largest block count reached during refinement; the
	// partition only grows, so it equals the final pre-merge block count.
	PeakBlocks int
	// CSRBuild is the time spent snapshotting adjacency into CSR form.
	CSRBuild time.Duration
	// Total is the wall time of the whole build (partition, broadcast,
	// rounds, index-graph materialization).
	Total time.Duration
}

// Build constructs the D(k)-index of the data graph g for the given
// query-load requirements (Algorithm 2):
//
//  1. start from the label-split index graph;
//  2. broadcast the requirements so that k(parent) >= k(child) - 1
//     (Algorithm 1);
//  3. for k = 1..k_max, split every block whose requirement is >= k until it
//     is stable with respect to the previous round's partition, carrying
//     requirements to fragments by inheritance.
//
// The result's node local similarities equal the broadcast requirements, and
// the structural invariant of Definition 3 holds. Runs in O(k_max * m).
func Build(g *graph.Graph, reqs Requirements) *DK {
	ig, stats := buildFromSource(index.DataSource{G: g}, reqs, nil, false)
	return &DK{IG: ig, LabelReqs: reqs.Clone(), Stats: stats}
}

// BuildFromIndex constructs a D(k)-index using an existing index graph as
// the construction source, per Theorem 2 (the D(k)-index of a refinement of
// I_G is I_G itself). Extents of merged source nodes are unioned.
//
// When the source's local similarities have decayed below the broadcast
// requirements (as happens after edge-addition updates), result nodes are
// clamped to the minimum source similarity among their merged members, and
// the Definition 3 invariant is re-established by lowering, so the result is
// always sound. This is the engine behind subgraph addition (Algorithm 3)
// and the demoting process (Section 5.4).
func BuildFromIndex(src *index.IndexGraph, reqs Requirements) *DK {
	ig, stats := buildFromSource(src, reqs, src.K, false)
	return &DK{IG: ig, LabelReqs: reqs.Clone(), Stats: stats}
}

// BuildReference is Build on the preserved reference refinement path
// (partition.ReferenceRefineRound). It exists for the build audit, which
// asserts the fast pipeline is block-identical to it over every experiment
// dataset; it is never the production path.
func BuildReference(g *graph.Graph, reqs Requirements) *DK {
	ig, stats := buildFromSource(index.DataSource{G: g}, reqs, nil, true)
	return &DK{IG: ig, LabelReqs: reqs.Clone(), Stats: stats}
}

// BuildFromIndexReference is BuildFromIndex on the reference refinement
// path; for the build audit.
func BuildFromIndexReference(src *index.IndexGraph, reqs Requirements) *DK {
	ig, stats := buildFromSource(src, reqs, src.K, true)
	return &DK{IG: ig, LabelReqs: reqs.Clone(), Stats: stats}
}

// buildFromSource is the shared Algorithm 2 engine. memberK, when non-nil,
// supplies the local similarity already established for each source node;
// result nodes take the min of their broadcast requirement and their merged
// members' similarities. With reference set, rounds run on the preserved
// reference refiner instead of the CSR pipeline (for the build audit).
func buildFromSource(src index.Source, reqs Requirements, memberK func(graph.NodeID) int, reference bool) (*index.IndexGraph, BuildStats) {
	var stats BuildStats
	start := time.Now()
	p := partition.NewByLabel(src)
	labelBlocks := p.NumBlocks()

	// Per-block requirements from the query load.
	blockReq := make([]int, p.NumBlocks())
	for b := 0; b < p.NumBlocks(); b++ {
		blockReq[b] = reqs.Get(src.Label(p.Members(partition.BlockID(b))[0]))
	}

	// Algorithm 1 operates on the label-split index graph; derive its
	// block-level parent adjacency from the source.
	bg := blockGraph(src, p)
	blockReq = broadcast(bg, blockReq)

	// Algorithm 2 main loop: round k refines blocks requiring >= k against
	// the previous round's partition. The adjacency is fixed for the whole
	// job, so it is snapshotted into CSR form exactly once; each round's
	// signature and regrouping phases then fan out over the shared workpool
	// inside Refiner.Round, and the requirement inheritance for the new
	// blocks fans out here. All merges are in node/block order, so the
	// result does not depend on the fan-out width.
	kmax := 0
	for _, r := range blockReq {
		if r > kmax {
			kmax = r
		}
	}
	var refiner *partition.Refiner
	if kmax > 0 && !reference {
		refiner = partition.NewRefiner(src)
		stats.CSRBuild = refiner.CSRBuild
	}
	for k := 1; k <= kmax; k++ {
		req := blockReq // capture this round's values
		sel := func(b partition.BlockID) bool { return req[b] >= k }
		var res partition.RefineResult
		if reference {
			res = p.ReferenceRefineRound(src, sel)
		} else {
			res = refiner.Round(p, sel)
		}
		next := make([]int, p.NumBlocks())
		workpool.Chunks(len(next), workpool.Workers(len(next), 1<<15, 16), func(_, lo, hi int) {
			for nb := lo; nb < hi; nb++ {
				next[nb] = req[res.Origin[nb]] // inheritance
			}
		})
		blockReq = next
	}
	stats.Rounds = kmax
	stats.PeakBlocks = p.NumBlocks()
	stats.Splits = p.NumBlocks() - labelBlocks

	ig := index.FromPartition(src, p, func(b partition.BlockID) int { return blockReq[b] })

	if memberK != nil {
		// Clamp each result node to the weakest similarity among the source
		// nodes merged into it, then restore the Definition 3 invariant.
		clamped := false
		for b := 0; b < p.NumBlocks(); b++ {
			k := blockReq[b]
			for _, s := range p.Members(partition.BlockID(b)) {
				if mk := memberK(s); mk < k {
					k = mk
				}
			}
			if k < blockReq[b] {
				ig.SetK(graph.NodeID(b), k)
				clamped = true
			}
		}
		if clamped {
			LowerToInvariant(ig)
		}
	}
	stats.Total = time.Since(start)
	return ig, stats
}

// blockGraph materializes the quotient parent-adjacency of a partition: the
// parents of block b are the blocks containing parents of b's members.
type quotientGraph struct {
	parents [][]graph.NodeID
}

func (q *quotientGraph) NumNodes() int                         { return len(q.parents) }
func (q *quotientGraph) Parents(n graph.NodeID) []graph.NodeID { return q.parents[n] }

func blockGraph(src index.Source, p *partition.Partition) *quotientGraph {
	q := &quotientGraph{parents: make([][]graph.NodeID, p.NumBlocks())}
	seen := make(map[[2]partition.BlockID]bool)
	for n := 0; n < src.NumNodes(); n++ {
		b := p.BlockOf(graph.NodeID(n))
		for _, par := range src.Parents(graph.NodeID(n)) {
			pb := p.BlockOf(par)
			key := [2]partition.BlockID{pb, b}
			if !seen[key] {
				seen[key] = true
				q.parents[b] = append(q.parents[b], graph.NodeID(pb))
			}
		}
	}
	return q
}

// LowerToInvariant restores Definition 3 on an index graph by lowering: for
// every edge a -> b it enforces k(b) <= k(a) + 1, propagating with a
// worklist until stable. Lowering never breaks soundness (a smaller budget
// only means more validation), so this is always safe to call.
func LowerToInvariant(ig *index.IndexGraph) {
	queue := make([]graph.NodeID, 0, ig.NumNodes())
	for n := 0; n < ig.NumNodes(); n++ {
		queue = append(queue, graph.NodeID(n))
	}
	inQueue := make([]bool, ig.NumNodes())
	for i := range inQueue {
		inQueue[i] = true
	}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		inQueue[a] = false
		limit := ig.K(a) + 1
		for _, b := range ig.Children(a) {
			if ig.K(b) > limit {
				ig.SetK(b, limit)
				if !inQueue[b] {
					inQueue[b] = true
					queue = append(queue, b)
				}
			}
		}
	}
}

// CheckInvariant verifies Definition 3 (k(parent) >= k(child) - 1 on every
// index edge); for tests and debugging.
func CheckInvariant(ig *index.IndexGraph) error {
	for a := 0; a < ig.NumNodes(); a++ {
		ka := ig.K(graph.NodeID(a))
		for _, b := range ig.Children(graph.NodeID(a)) {
			if ka < ig.K(b)-1 {
				return fmt.Errorf("core: invariant violated on edge %d->%d: k=%d < %d-1",
					a, b, ka, ig.K(b))
			}
		}
	}
	return nil
}

// Size returns the number of index nodes, the paper's index size metric.
func (dk *DK) Size() int { return dk.IG.NumNodes() }

// Audit exhaustively verifies every similarity claim of the index up to
// level maxK (claims above maxK are checked at maxK): for each index node,
// every label path of length <= min(K, maxK) that matches the node in the
// index graph must match every data node in its extent. It returns nil when
// every claim holds. Cost grows with the number of bounded index paths, so
// keep maxK small (2-3) on large indexes. It is the semantic complement of
// IndexGraph.Validate, which checks structure only.
func Audit(ig *index.IndexGraph, maxK int) error {
	g := ig.Data()
	for b := 0; b < ig.NumNodes(); b++ {
		k := ig.K(graph.NodeID(b))
		if k > maxK {
			k = maxK
		}
		if k <= 0 {
			continue
		}
		type frame struct {
			n    graph.NodeID
			path []graph.LabelID
		}
		// Materialize b's extent once; Extent now copies out of the
		// succinct set, so calling it per discovered path would re-decode.
		ext := ig.Extent(graph.NodeID(b))
		stack := []frame{{graph.NodeID(b), []graph.LabelID{ig.Label(graph.NodeID(b))}}}
		seen := make(map[string]bool)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if len(cur.path) > 1 {
				key := encodePath(cur.path)
				if !seen[key] {
					seen[key] = true
					for _, d := range ext {
						if !g.LabelPathMatchesNode(cur.path, d, nil) {
							return fmt.Errorf("core: audit failed: index node %d claims k=%d but a length-%d path does not match data node %d",
								b, ig.K(graph.NodeID(b)), len(cur.path)-1, d)
						}
					}
				}
			}
			if len(cur.path) <= k {
				for _, p := range ig.Parents(cur.n) {
					np := append([]graph.LabelID{ig.Label(p)}, cur.path...)
					stack = append(stack, frame{p, np})
				}
			}
		}
	}
	return nil
}

func encodePath(path []graph.LabelID) string {
	b := make([]byte, 0, len(path)*4)
	for _, l := range path {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}
