package core

import (
	"encoding/binary"

	"dkindex/internal/graph"
	"dkindex/internal/index"
)

// maxTrackedPaths bounds the label-path sets maintained by Algorithm 4. The
// sets can in principle grow exponentially with the similarity being probed;
// beyond this budget the algorithm stops and returns the similarity proven
// so far, which is always sound (a smaller k only means more validation).
const maxTrackedPaths = 4096

// maxProbedSimilarity caps how far Algorithm 4 probes. Index nodes marked
// Exact would otherwise make the probe loop effectively unbounded (cyclic
// graphs can keep matching forever). 64 is far beyond any practical path
// expression length, and stopping early is always sound.
const maxProbedSimilarity = 64

// UpdateLocalSimilarity is Algorithm 4: given the index endpoints U -> V of
// an edge about to be added, it computes the largest k_N <= min(k_U+1, k_V)
// such that every label path of length k_N entering V through U already
// matched V in the index graph before the edge existed. V's local similarity
// can then be reset to k_N instead of 0 after the edge addition.
//
// It must be called on the index graph *before* the new edge is inserted
// (the "original I_G" of the paper).
func UpdateLocalSimilarity(ig *index.IndexGraph, u, v graph.NodeID) int {
	upbound := ig.K(u) + 1
	if kv := ig.K(v); kv < upbound {
		upbound = kv
	}
	if upbound > maxProbedSimilarity {
		upbound = maxProbedSimilarity
	}
	if upbound <= 0 {
		return 0
	}

	// Label paths are tracked together with the set of index nodes at which
	// matching occurrences start (the paper's S and S' sets). Keys encode
	// the label sequence; extending a path by a parent prepends its label.
	newSet := map[string]map[graph.NodeID]bool{
		encodeLabel(nil, ig.Label(u)): {u: true},
	}
	oldSet := make(map[string]map[graph.NodeID]bool)
	for _, p := range ig.Parents(v) {
		key := encodeLabel(nil, ig.Label(p))
		addOcc(oldSet, key, p)
	}

	kN := 0
	for kN < upbound {
		// Check: every new label path of the current length occurs among
		// the old label paths into V.
		for key := range newSet {
			if _, ok := oldSet[key]; !ok {
				return kN
			}
		}
		kN++
		if kN == upbound {
			return kN
		}
		// Extend by one parent level. Old paths are restricted to those
		// matching a new path first (the paper's OldLabelPathSet =
		// NewLabelPathSet step): longer paths can only match through the
		// suffixes that are still candidates.
		nextOld := make(map[string]map[graph.NodeID]bool)
		for key := range newSet {
			for w := range oldSet[key] {
				for _, x := range ig.Parents(w) {
					addOcc(nextOld, encodeLabel([]byte(key), ig.Label(x)), x)
				}
			}
		}
		nextNew := make(map[string]map[graph.NodeID]bool)
		for key, occ := range newSet {
			for w := range occ {
				for _, x := range ig.Parents(w) {
					addOcc(nextNew, encodeLabel([]byte(key), ig.Label(x)), x)
				}
			}
		}
		if len(nextNew) == 0 {
			// No longer new paths exist (U's ancestry is exhausted): every
			// longer path through U trivially matches. The similarity is
			// only capped by the upbound.
			return upbound
		}
		if len(nextNew) > maxTrackedPaths || len(nextOld) > maxTrackedPaths {
			return kN
		}
		newSet, oldSet = nextNew, nextOld
	}
	return kN
}

func addOcc(set map[string]map[graph.NodeID]bool, key string, n graph.NodeID) {
	occ, ok := set[key]
	if !ok {
		occ = make(map[graph.NodeID]bool)
		set[key] = occ
	}
	occ[n] = true
}

// encodeLabel prepends label l to the encoded path suffix.
func encodeLabel(suffix []byte, l graph.LabelID) string {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(l))
	return string(buf[:]) + string(suffix)
}

// AddEdge is Algorithm 5, the D(k)-index edge-addition update: insert the
// data edge u -> v, reset the local similarity of v's index node to the
// value justified by Algorithm 4, and propagate the lowering breadth-first
// so that Definition 3 holds again. Unlike the A(k) propagate baseline it
// never touches the data graph and never splits an extent: the index size is
// unchanged, only similarities decay (Section 5.2).
func (dk *DK) AddEdge(u, v graph.NodeID) index.UpdateStats {
	return dk.addEdge(u, v, true)
}

// AddEdgeNaive inserts the edge like AddEdge but skips Algorithm 4, always
// resetting the target's local similarity to zero (the "worst case" the
// paper's Figure 3 discussion contrasts against). It exists for the ablation
// that measures how much evaluation performance Algorithm 4's probe
// preserves; production code should use AddEdge.
func (dk *DK) AddEdgeNaive(u, v graph.NodeID) index.UpdateStats {
	return dk.addEdge(u, v, false)
}

func (dk *DK) addEdge(u, v graph.NodeID, probe bool) index.UpdateStats {
	var stats index.UpdateStats
	ig := dk.IG
	if ig.Data().HasEdge(u, v) {
		return stats // duplicate data edge: paths are unchanged
	}
	a, b := ig.IndexOf(u), ig.IndexOf(v)
	kN := 0
	if probe {
		kN = UpdateLocalSimilarity(ig, a, b)
	}
	stats.IndexNodesVisited++ // V itself
	ig.AddDataEdge(u, v)
	if kN >= ig.K(b) {
		return stats // similarity fully preserved; nothing to propagate
	}
	ig.SetK(b, kN)

	// Breadth-first lowering: an index node r distant from V may keep no
	// more than k_N + r.
	queue := []graph.NodeID{b}
	inQueue := map[graph.NodeID]bool{b: true}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		delete(inQueue, w)
		limit := ig.K(w) + 1
		for _, x := range ig.Children(w) {
			stats.IndexNodesVisited++
			if ig.K(x) > limit {
				ig.SetK(x, limit)
				if !inQueue[x] {
					inQueue[x] = true
					queue = append(queue, x)
				}
			}
		}
	}
	return stats
}

// RemoveEdge deletes the data edge u -> v and updates the index: the target
// class's local similarity is lowered (the deleted edge may have carried
// label paths other extent members keep, which would make higher claims
// unsound for v) and the lowering propagates breadth-first exactly as in
// Algorithm 5. The index never splits and the data graph is never
// traversed — deletion is as cheap as addition, which the paper's framework
// implies ("all other update operations can be built on these two basic
// cases") but does not spell out.
//
// Every label path v loses passes through the deleted edge, so if v retains
// another parent labeled like u, all of v's length-1 label paths survive and
// similarity 1 is kept (the one-level analogue of Algorithm 4 for
// deletions); otherwise the similarity drops to 0. Descendants are then
// lowered to that budget plus their index distance: a member w at data
// distance r below v only loses label paths longer than r plus the retained
// level, and index distance never exceeds data distance. (Deletions differ
// from additions here: an addition introduces no new label paths below the
// probed level, so the Definition 3 gap is the only thing to repair; a
// deletion invalidates member paths at every depth below v, so the lowering
// must be forced by distance even where the invariant already holds.)
func (dk *DK) RemoveEdge(u, v graph.NodeID) index.UpdateStats {
	var stats index.UpdateStats
	ig := dk.IG
	uLabel := ig.Data().Label(u)
	if !ig.RemoveDataEdge(u, v) {
		return stats
	}
	b := ig.IndexOf(v)
	stats.IndexNodesVisited++

	kept := 0
	for _, p := range ig.Data().Parents(v) {
		if ig.Data().Label(p) == uLabel {
			kept = 1 // another u-labeled parent spells every lost length-1 path
			break
		}
	}
	if kept >= ig.K(b) {
		// Descendants are covered by Definition 3: K(X) <= K(b)+dist <= kept+dist.
		return stats
	}
	ig.SetK(b, kept)

	// Forced breadth-first lowering: each reachable index node X gets
	// K(X) <= kept + dist(b, X). Stopping when a node needs no change is
	// safe because Definition 3 then bounds everything below it.
	type item struct {
		n graph.NodeID
		d int
	}
	queue := []item{{b, 0}}
	seen := map[graph.NodeID]bool{b: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, x := range ig.Children(cur.n) {
			stats.IndexNodesVisited++
			limit := kept + cur.d + 1
			if ig.K(x) > limit {
				ig.SetK(x, limit)
				if !seen[x] {
					seen[x] = true
					queue = append(queue, item{x, cur.d + 1})
				}
			}
		}
	}
	return stats
}
