package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// This file exports the frame layer for replication: a primary re-frames
// on-disk records with feed-global sequence numbers, and a replica parses the
// shipped bytes with the same torn-tail discipline recovery uses. The wire
// format of a replication chunk is exactly the WAL file format — header, then
// frames — so both sides share one codec and the frame CRC detects a body
// truncated in flight just like a torn tail on disk.

// HeaderSize is the byte length of the file/stream header.
const HeaderSize = headerSize

// Header returns a fresh copy of the header that starts every WAL file and
// every replication chunk.
func Header() []byte {
	h := make([]byte, 0, headerSize)
	h = append(h, magic[:]...)
	return append(h, Version)
}

// CheckHeader validates the magic and version at the front of data.
func CheckHeader(data []byte) error {
	if len(data) < headerSize || [4]byte(data[:4]) != magic {
		return ErrBadHeader
	}
	if data[4] != Version {
		return fmt.Errorf("wal: unsupported version %d", data[4])
	}
	return nil
}

// ParseFrame decodes one physical frame at off, expanding a group frame into
// its members (contiguous sequence numbers from prevSeq+1). ok is false for a
// torn, corrupt or out-of-sequence frame — the caller stops there, exactly as
// Replay would.
func ParseFrame(data []byte, off int, prevSeq uint64) (recs []Record, end int, ok bool) {
	rec, end, ok := parseRecord(data, off, prevSeq)
	if !ok {
		return nil, 0, false
	}
	if rec.Op == opGroup {
		members, ok := parseGroupBody(rec.Seq, rec.Payload)
		if !ok {
			return nil, 0, false
		}
		return members, end, true
	}
	return []Record{rec}, end, true
}

// AppendFrame appends one encoded frame carrying recs to dst and returns the
// extended slice. A single record encodes as a plain frame, several as a
// group frame — byte-for-byte the framing Append and AppendGroup write, with
// the frame sequence taken from recs[0].Seq (members are assumed contiguous).
func AppendFrame(dst []byte, recs []Record) ([]byte, error) {
	if len(recs) == 0 {
		return dst, errors.New("wal: empty frame")
	}
	for _, r := range recs {
		if r.Op == opGroup {
			return dst, ErrReservedOp
		}
	}
	start := len(dst)
	dst = binary.AppendUvarint(dst, recs[0].Seq)
	if len(recs) == 1 {
		dst = append(dst, byte(recs[0].Op))
		dst = binary.AppendUvarint(dst, uint64(len(recs[0].Payload)))
		dst = append(dst, recs[0].Payload...)
	} else {
		body := binary.AppendUvarint(nil, uint64(len(recs)))
		for _, r := range recs {
			body = append(body, byte(r.Op))
			body = binary.AppendUvarint(body, uint64(len(r.Payload)))
			body = append(body, r.Payload...)
		}
		dst = append(dst, byte(opGroup))
		dst = binary.AppendUvarint(dst, uint64(len(body)))
		dst = append(dst, body...)
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:])), nil
}

// Offset returns the durable end of the writer's file: every byte below it
// belongs to the header or an acknowledged record and will never change, so
// a concurrent reader may serve the prefix without synchronizing with
// appends.
func (w *Writer) Offset() int64 { return w.off }
