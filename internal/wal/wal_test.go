package wal

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"dkindex/internal/faultfs"
	"dkindex/internal/fsx"
)

func collect(t *testing.T, fs fsx.FS, path string) ([]Record, *ReplayResult) {
	t.Helper()
	var recs []Record
	res, err := Replay(fs, path, func(r Record) error {
		recs = append(recs, Record{Seq: r.Seq, Op: r.Op, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, res
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := fsx.OS{}
	path := filepath.Join(t.TempDir(), "wal-1.log")
	w, err := Create(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("a"), {}, []byte("long payload with \x00 bytes \xff")}
	for i, p := range payloads {
		if _, err := w.Append(Op(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, res := collect(t, fs, path)
	if len(recs) != len(payloads) || res.Truncated {
		t.Fatalf("got %d records (truncated=%v), want %d", len(recs), res.Truncated, len(payloads))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Op != Op(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	if res.LastSeq != 3 {
		t.Fatalf("LastSeq = %d", res.LastSeq)
	}
}

func TestTornTailIsTruncatedAndAppendable(t *testing.T) {
	fs := fsx.OS{}
	path := filepath.Join(t.TempDir(), "wal-1.log")
	w, _ := Create(fs, path)
	w.Append(1, []byte("first"))
	w.Append(2, []byte("second"))
	w.Close()

	// Tear the tail: chop the last 3 bytes of the file.
	f, err := fs.OpenRW(path)
	if err != nil {
		t.Fatal(err)
	}
	end, _ := f.Seek(0, 2)
	if err := f.Truncate(end - 3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, res := collect(t, fs, path)
	if len(recs) != 1 || !res.Truncated {
		t.Fatalf("after tear: %d records, truncated=%v", len(recs), res.Truncated)
	}

	// Resume appending after the valid prefix; the log stays fully readable.
	w2, err := OpenAt(fs, path, res.ValidSize, res.LastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Append(7, []byte("third")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	recs, res = collect(t, fs, path)
	if len(recs) != 2 || res.Truncated {
		t.Fatalf("after resume: %d records, truncated=%v", len(recs), res.Truncated)
	}
	if recs[1].Seq != 2 || string(recs[1].Payload) != "third" {
		t.Fatalf("resumed record wrong: %+v", recs[1])
	}
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	fs := faultfs.New()
	fs.MkdirAll("d")
	path := "d/wal-1.log"
	w, _ := Create(fs, path)
	w.Append(1, []byte("aaaa"))
	n2, _ := w.Append(2, []byte("bbbb"))
	w.Append(3, []byte("cccc"))
	w.Close()

	// Flip a byte inside the second record's payload.
	sz, _ := fs.Size(path)
	mid := int(sz) - n2 - 6
	if err := fs.Corrupt(path, mid, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	recs, res := collect(t, nil2fs(fs), path)
	if len(recs) != 1 || !res.Truncated {
		t.Fatalf("corrupt middle: %d records, truncated=%v", len(recs), res.Truncated)
	}
}

// nil2fs adapts *faultfs.MemFS to fsx.FS (it already implements it; this
// keeps the call sites explicit about the interface crossing).
func nil2fs(m *faultfs.MemFS) fsx.FS { return m }

func TestFailedAppendRollsBack(t *testing.T) {
	fs := faultfs.New()
	fs.MkdirAll("d")
	w, err := Create(fs, "d/wal-1.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	// Fail the next write; the rollback (truncate+sync) must leave the file
	// ending at record 1, and a subsequent append must still work.
	fs.FailAt(1, faultfs.ModeError)
	if _, err := w.Append(2, []byte("lost")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if w.Broken() {
		t.Fatal("writer should have rolled back, not broken")
	}
	if _, err := w.Append(2, []byte("second-try")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	recs, res := collect(t, fs, "d/wal-1.log")
	if len(recs) != 2 || res.Truncated {
		t.Fatalf("%d records, truncated=%v", len(recs), res.Truncated)
	}
	if string(recs[1].Payload) != "second-try" {
		t.Fatalf("record 2 = %q", recs[1].Payload)
	}
}

func TestWriterBreaksWhenRollbackFails(t *testing.T) {
	fs := faultfs.New()
	fs.MkdirAll("d")
	w, _ := Create(fs, "d/wal-1.log")
	w.Append(1, []byte("keep"))
	// Fail the write AND the rollback's truncate (ops 1 and 2 counted from
	// here): arm a crash so every subsequent op fails.
	fs.FailAt(1, faultfs.ModeCrash)
	if _, err := w.Append(2, []byte("lost")); err == nil {
		t.Fatal("append should fail")
	}
	if !w.Broken() {
		t.Fatal("writer should be broken after failed rollback")
	}
	if _, err := w.Append(3, nil); !errors.Is(err, ErrWriterBroken) {
		t.Fatalf("want ErrWriterBroken, got %v", err)
	}
}

func TestBadHeader(t *testing.T) {
	fs := faultfs.New()
	fs.MkdirAll("d")
	f, _ := fs.Create("d/x")
	f.Write([]byte("NOPE"))
	f.Close()
	if _, err := Replay(fs, "d/x", func(Record) error { return nil }); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("want ErrBadHeader, got %v", err)
	}
}

func TestAppendGroupRoundTrip(t *testing.T) {
	fs := faultfs.New()
	fs.MkdirAll("d")
	path := "d/wal-1.log"
	w, err := Create(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(1, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	group := []GroupRecord{
		{Op: 2, Payload: []byte("alpha")},
		{Op: 3, Payload: nil},
		{Op: 4, Payload: []byte("gamma with \x00\xff bytes")},
	}
	if _, err := w.AppendGroup(group); err != nil {
		t.Fatal(err)
	}
	if w.Seq() != 4 {
		t.Fatalf("Seq after group = %d, want 4", w.Seq())
	}
	if _, err := w.Append(5, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	recs, res := collect(t, fs, path)
	if len(recs) != 5 || res.Truncated {
		t.Fatalf("%d records, truncated=%v", len(recs), res.Truncated)
	}
	want := []struct {
		seq     uint64
		op      Op
		payload string
	}{
		{1, 1, "solo"},
		{2, 2, "alpha"},
		{3, 3, ""},
		{4, 4, "gamma with \x00\xff bytes"},
		{5, 5, "tail"},
	}
	for i, wr := range want {
		if recs[i].Seq != wr.seq || recs[i].Op != wr.op || string(recs[i].Payload) != wr.payload {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], wr)
		}
	}
	if res.LastSeq != 5 {
		t.Fatalf("LastSeq = %d", res.LastSeq)
	}
}

func TestAppendGroupSingleDegeneratesToPlainRecord(t *testing.T) {
	fs := faultfs.New()
	fs.MkdirAll("d")
	wg, _ := Create(fs, "d/group.log")
	if _, err := wg.AppendGroup([]GroupRecord{{Op: 7, Payload: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	wg.Close()
	wp, _ := Create(fs, "d/plain.log")
	if _, err := wp.Append(7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	wp.Close()
	g, _ := fsx.ReadAll(fs, "d/group.log")
	p, _ := fsx.ReadAll(fs, "d/plain.log")
	if !bytes.Equal(g, p) {
		t.Fatalf("single-member group bytes differ from plain record:\n%x\n%x", g, p)
	}
}

func TestAppendGroupRejectsReservedAndEmpty(t *testing.T) {
	fs := faultfs.New()
	fs.MkdirAll("d")
	w, _ := Create(fs, "d/wal-1.log")
	if _, err := w.Append(opGroup, nil); !errors.Is(err, ErrReservedOp) {
		t.Fatalf("Append(opGroup) = %v, want ErrReservedOp", err)
	}
	if _, err := w.AppendGroup([]GroupRecord{{Op: 1}, {Op: opGroup}}); !errors.Is(err, ErrReservedOp) {
		t.Fatalf("AppendGroup with reserved member = %v, want ErrReservedOp", err)
	}
	if _, err := w.AppendGroup(nil); err == nil {
		t.Fatal("AppendGroup(nil) should error")
	}
	if w.Seq() != 0 {
		t.Fatalf("rejected appends must not advance seq: %d", w.Seq())
	}
	// The writer is still usable after rejections.
	if _, err := w.Append(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

// TestTornGroupReplaysNothing proves group atomicity at the byte level: any
// truncation inside the group frame drops the whole batch, never a prefix.
func TestTornGroupReplaysNothing(t *testing.T) {
	fs := faultfs.New()
	fs.MkdirAll("d")
	path := "d/wal-1.log"
	w, _ := Create(fs, path)
	w.Append(1, []byte("before"))
	base, _ := fs.Size(path)
	n, err := w.AppendGroup([]GroupRecord{
		{Op: 2, Payload: []byte("aaaa")},
		{Op: 3, Payload: []byte("bbbb")},
		{Op: 4, Payload: []byte("cccc")},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	full, err := fsx.ReadAll(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < n; cut++ {
		f, _ := fs.Create(path)
		f.Write(full[:int(base)+n-cut])
		f.Close()
		recs, res := collect(t, fs, path)
		if len(recs) != 1 || !res.Truncated {
			t.Fatalf("cut %d: %d records (truncated=%v), want only the pre-group record", cut, len(recs), res.Truncated)
		}
		if res.ValidSize != base {
			t.Fatalf("cut %d: ValidSize = %d, want %d", cut, res.ValidSize, base)
		}
	}
}

func TestFailedGroupAppendRollsBack(t *testing.T) {
	fs := faultfs.New()
	fs.MkdirAll("d")
	w, _ := Create(fs, "d/wal-1.log")
	w.Append(1, []byte("keep"))
	fs.FailAt(1, faultfs.ModeError)
	_, err := w.AppendGroup([]GroupRecord{{Op: 2, Payload: []byte("x")}, {Op: 3, Payload: []byte("y")}})
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if w.Broken() {
		t.Fatal("writer should have rolled back, not broken")
	}
	if w.Seq() != 1 {
		t.Fatalf("seq after failed group = %d, want 1", w.Seq())
	}
	if _, err := w.AppendGroup([]GroupRecord{{Op: 2, Payload: []byte("x")}, {Op: 3, Payload: []byte("y")}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	recs, res := collect(t, fs, "d/wal-1.log")
	if len(recs) != 3 || res.Truncated {
		t.Fatalf("%d records, truncated=%v", len(recs), res.Truncated)
	}
	if recs[2].Seq != 3 || string(recs[2].Payload) != "y" {
		t.Fatalf("record 3 = %+v", recs[2])
	}
}
