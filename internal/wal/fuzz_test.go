package wal

import (
	"testing"

	"dkindex/internal/faultfs"
	"dkindex/internal/fsx"
)

// FuzzWALReplay feeds arbitrary bytes to the replay parser: it must never
// panic, every record it applies must round-trip its framing invariants
// (contiguous sequence numbers from 1), and it must never report more valid
// bytes than the file holds.
func FuzzWALReplay(f *testing.F) {
	// A valid two-record log as the primary seed.
	fs := faultfs.New()
	fs.MkdirAll("d")
	w, err := Create(fs, "d/w")
	if err != nil {
		f.Fatal(err)
	}
	w.Append(1, []byte("hello"))
	w.Append(2, []byte{0, 1, 2, 3, 255})
	w.Close()
	if valid, err := fsx.ReadAll(fs, "d/w"); err == nil {
		f.Add(valid)
		// Truncations at every prefix hit torn-tail handling.
		for i := 0; i < len(valid); i += 3 {
			f.Add(valid[:i])
		}
	}
	f.Add([]byte("DKWL"))
	f.Add([]byte("DKWL\x01"))
	f.Add([]byte("DKWL\x01\x01\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		m := faultfs.New()
		m.MkdirAll("d")
		fh, err := m.Create("d/f")
		if err != nil {
			t.Fatal(err)
		}
		fh.Write(data)
		fh.Close()
		var prev uint64
		res, err := Replay(m, "d/f", func(r Record) error {
			if r.Seq != prev+1 {
				t.Fatalf("sequence gap: %d after %d", r.Seq, prev)
			}
			prev = r.Seq
			return nil
		})
		if err != nil {
			return
		}
		if res.ValidSize > int64(len(data)) {
			t.Fatalf("ValidSize %d > file size %d", res.ValidSize, len(data))
		}
		if res.LastSeq != prev {
			t.Fatalf("LastSeq %d, applied through %d", res.LastSeq, prev)
		}
	})
}
