package wal

import (
	"testing"

	"dkindex/internal/faultfs"
	"dkindex/internal/fsx"
)

// FuzzWALReplay feeds arbitrary bytes to the replay parser: it must never
// panic, every record it applies must round-trip its framing invariants
// (contiguous sequence numbers from 1), and it must never report more valid
// bytes than the file holds.
func FuzzWALReplay(f *testing.F) {
	// A valid two-record log as the primary seed.
	fs := faultfs.New()
	fs.MkdirAll("d")
	w, err := Create(fs, "d/w")
	if err != nil {
		f.Fatal(err)
	}
	w.Append(1, []byte("hello"))
	w.Append(2, []byte{0, 1, 2, 3, 255})
	w.Close()
	if valid, err := fsx.ReadAll(fs, "d/w"); err == nil {
		f.Add(valid)
		// Truncations at every prefix hit torn-tail handling.
		for i := 0; i < len(valid); i += 3 {
			f.Add(valid[:i])
		}
	}
	f.Add([]byte("DKWL"))
	f.Add([]byte("DKWL\x01"))
	f.Add([]byte("DKWL\x01\x01\x00\x00"))

	// Group-frame torn tails: a log whose last frame is an atomic group,
	// truncated at every offset — including mid-member, inside the varint
	// member count, and inside the trailing CRC. Replay must surface either
	// the whole group or none of it, never a member prefix.
	for _, g := range groupFrameLogs(f) {
		f.Add(g.data)
		for i := 0; i < len(g.data); i++ {
			f.Add(g.data[:i])
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		m := faultfs.New()
		m.MkdirAll("d")
		fh, err := m.Create("d/f")
		if err != nil {
			t.Fatal(err)
		}
		fh.Write(data)
		fh.Close()
		var prev uint64
		res, err := Replay(m, "d/f", func(r Record) error {
			if r.Seq != prev+1 {
				t.Fatalf("sequence gap: %d after %d", r.Seq, prev)
			}
			prev = r.Seq
			return nil
		})
		if err != nil {
			return
		}
		if res.ValidSize > int64(len(data)) {
			t.Fatalf("ValidSize %d > file size %d", res.ValidSize, len(data))
		}
		if res.LastSeq != prev {
			t.Fatalf("LastSeq %d, applied through %d", res.LastSeq, prev)
		}
	})
}

// groupLog is one torn-tail fixture: a log whose final frame is an atomic
// group of group members, preceded by prefix plain records.
type groupLog struct {
	data          []byte
	prefix, group uint64
}

// groupFrameLogs builds logs ending in a group frame whose truncations the
// fuzz corpus and the torn-tail regression test sweep: a plain record
// followed by a three-member group, and a bare two-member group with
// payloads long enough that member boundaries sit far from frame boundaries.
func groupFrameLogs(tb testing.TB) []groupLog {
	tb.Helper()
	build := func(f func(w *Writer)) []byte {
		fs := faultfs.New()
		fs.MkdirAll("d")
		w, err := Create(fs, "d/w")
		if err != nil {
			tb.Fatal(err)
		}
		f(w)
		w.Close()
		data, err := fsx.ReadAll(fs, "d/w")
		if err != nil {
			tb.Fatal(err)
		}
		return data
	}
	return []groupLog{
		{prefix: 1, group: 3, data: build(func(w *Writer) {
			w.Append(1, []byte("solo"))
			w.AppendGroup([]GroupRecord{
				{Op: 2, Payload: []byte("first member")},
				{Op: 3, Payload: []byte{0xff, 0x00, 0xaa}},
				{Op: 4, Payload: []byte("the third and final member")},
			})
		})},
		{prefix: 0, group: 2, data: build(func(w *Writer) {
			w.AppendGroup([]GroupRecord{
				{Op: 5, Payload: bytesOf(200, 0x5a)},
				{Op: 6, Payload: bytesOf(100, 0xc3)},
			})
		})},
	}
}

func bytesOf(n int, b byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// TestGroupFrameTornTailAtomicity is the deterministic regression behind the
// fuzz seeds: for every truncation point of logs ending in a group frame,
// replay must report the truncation and apply either every member of the
// group or none — a torn tail can never surface a member prefix.
func TestGroupFrameTornTailAtomicity(t *testing.T) {
	for li, g := range groupFrameLogs(t) {
		fs := faultfs.New()
		fs.MkdirAll("d")
		writeFile := func(data []byte) {
			fh, err := fs.Create("d/f")
			if err != nil {
				t.Fatal(err)
			}
			fh.Write(data)
			fh.Close()
		}
		total := g.prefix + g.group
		writeFile(g.data)
		var applied uint64
		res, err := Replay(fs, "d/f", func(r Record) error { applied = r.Seq; return nil })
		if err != nil || res.Truncated || applied != total {
			t.Fatalf("log %d: intact replay: applied %d/%d, %v %+v", li, applied, total, err, res)
		}
		for cut := 0; cut < len(g.data); cut++ {
			writeFile(g.data[:cut])
			var prev uint64
			res, err := Replay(fs, "d/f", func(r Record) error {
				if r.Seq != prev+1 {
					t.Fatalf("log %d cut %d: sequence gap %d after %d", li, cut, r.Seq, prev)
				}
				prev = r.Seq
				return nil
			})
			if err != nil {
				continue // unreadable header: no records surfaced, fine
			}
			// Cuts on a frame boundary leave a shorter-but-clean log; any
			// other cut leaves a torn tail that must be reported.
			if wantTorn := res.ValidSize != int64(cut); res.Truncated != wantTorn {
				t.Fatalf("log %d cut %d: Truncated = %v, want %v (valid %d)",
					li, cut, res.Truncated, wantTorn, res.ValidSize)
			}
			if prev == total {
				t.Fatalf("log %d cut %d: full log replayed from a truncation", li, cut)
			}
			if prev > g.prefix {
				t.Fatalf("log %d cut %d: partial group surfaced (%d of %d members)",
					li, cut, prev-g.prefix, g.group)
			}
		}
	}
}
