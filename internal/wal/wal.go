// Package wal is a checksummed, append-only write-ahead log for index
// mutations. One log file covers one checkpoint epoch: every record appended
// after checkpoint N lands in wal-N, and recovery replays the chain of logs
// on top of the newest loadable checkpoint.
//
// File layout:
//
//	header: magic "DKWL", version byte
//	record: uvarint seq (1-based, contiguous), op byte,
//	        uvarint payload length, payload,
//	        crc32/IEEE over (seq|op|len|payload), 4 bytes little-endian
//	group:  a record whose op byte is the reserved 0xFF and whose payload is
//	        uvarint member count (≥2), then per member: op byte, uvarint
//	        payload length, payload. Members take sequence numbers
//	        seq..seq+count-1; the single frame CRC makes the batch atomic.
//
// Append is write-ahead durable: the record is written and fsynced before
// Append returns. A failed append rolls the file back to the previous record
// boundary so a later append cannot strand readable records behind garbage;
// if even the rollback fails the writer latches ErrWriterBroken and refuses
// further appends — the store recovers by rotating to a fresh log at the
// next checkpoint.
//
// Replay tolerates a torn tail: it applies every intact record and reports
// the number of valid bytes so the caller can truncate the garbage and keep
// appending. A checksum mismatch, a short frame or a sequence gap all end
// the replay the same way — records beyond that point were never
// acknowledged durable in an order that could matter.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"dkindex/internal/fsx"
)

// Op tags one record type. The WAL does not interpret payloads; the facade
// defines the vocabulary.
type Op byte

// opGroup frames an atomic group of records inside one physical frame. The
// value is reserved: Append rejects it so the facade vocabulary can never
// collide with the framing layer.
const opGroup Op = 0xFF

// ErrReservedOp reports an attempt to append a record with the reserved
// group-framing op byte.
var ErrReservedOp = errors.New("wal: op 0xFF is reserved for group frames")

// Magic identifies a WAL file; Version its format revision.
var magic = [4]byte{'D', 'K', 'W', 'L'}

// Version is the current WAL format version.
const Version = 1

const headerSize = 5

// ErrWriterBroken reports a writer that failed to roll back a bad append;
// nothing more can be safely appended to its file.
var ErrWriterBroken = errors.New("wal: writer broken (failed rollback after bad append)")

// ErrBadHeader reports a file that is not a WAL (or whose header was torn).
var ErrBadHeader = errors.New("wal: bad file header")

// Record is one replayed entry.
type Record struct {
	Seq     uint64
	Op      Op
	Payload []byte
}

// Writer appends records to one WAL file.
type Writer struct {
	f      fsx.File
	path   string
	seq    uint64 // last acknowledged sequence number
	off    int64  // durable end of file
	bytes  int64  // payload+frame bytes acknowledged
	broken bool
	buf    []byte
	gbuf   []byte // group-body scratch
}

// Create creates (or truncates) a WAL file and durably writes its header.
// The caller is responsible for dir-syncing the parent directory if the file
// is new.
func Create(fs fsx.FS, path string) (*Writer, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	hdr := append(magic[:], Version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, path: path, off: headerSize}, nil
}

// OpenAt reopens an existing WAL for appending after a replay: the file is
// truncated to validSize (chopping any torn tail durably) and appends resume
// with sequence numbers after lastSeq.
func OpenAt(fs fsx.FS, path string, validSize int64, lastSeq uint64) (*Writer, error) {
	f, err := fs.OpenRW(path)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(validSize, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, path: path, seq: lastSeq, off: validSize}, nil
}

// Path returns the file path the writer appends to.
func (w *Writer) Path() string { return w.path }

// Seq returns the last acknowledged sequence number.
func (w *Writer) Seq() uint64 { return w.seq }

// Bytes returns how many bytes of acknowledged records (frames included)
// this writer has appended in its lifetime (not counting replayed ones).
func (w *Writer) Bytes() int64 { return w.bytes }

// Append durably appends one record: it returns only after the bytes are
// written and fsynced. On failure the record is not acknowledged and the
// file is rolled back to the previous record boundary.
func (w *Writer) Append(op Op, payload []byte) (int, error) {
	if op == opGroup {
		return 0, ErrReservedOp
	}
	if w.broken {
		return 0, ErrWriterBroken
	}
	frame := w.buf[:0]
	frame = binary.AppendUvarint(frame, w.seq+1)
	frame = append(frame, byte(op))
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame))
	w.buf = frame

	if err := w.commit(frame); err != nil {
		return 0, err
	}
	w.seq++
	return len(frame), nil
}

// GroupRecord is one member of an atomic group append.
type GroupRecord struct {
	Op      Op
	Payload []byte
}

// AppendGroup durably appends a batch of records as one physical frame with
// one fsync. The group is atomic under the frame checksum: recovery replays
// either every member (in order, with contiguous sequence numbers) or none —
// a torn write can never surface a prefix of the batch. A single-record
// group degenerates to a plain Append so the on-disk format for singles is
// unchanged. On failure no member is acknowledged and the file is rolled
// back to the previous record boundary.
func (w *Writer) AppendGroup(recs []GroupRecord) (int, error) {
	if len(recs) == 0 {
		return 0, errors.New("wal: empty group")
	}
	if len(recs) == 1 {
		return w.Append(recs[0].Op, recs[0].Payload)
	}
	if w.broken {
		return 0, ErrWriterBroken
	}
	body := w.gbuf[:0]
	body = binary.AppendUvarint(body, uint64(len(recs)))
	for _, r := range recs {
		if r.Op == opGroup {
			return 0, ErrReservedOp
		}
		body = append(body, byte(r.Op))
		body = binary.AppendUvarint(body, uint64(len(r.Payload)))
		body = append(body, r.Payload...)
	}
	w.gbuf = body

	frame := w.buf[:0]
	frame = binary.AppendUvarint(frame, w.seq+1)
	frame = append(frame, byte(opGroup))
	frame = binary.AppendUvarint(frame, uint64(len(body)))
	frame = append(frame, body...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame))
	w.buf = frame

	if err := w.commit(frame); err != nil {
		return 0, err
	}
	w.seq += uint64(len(recs))
	return len(frame), nil
}

// commit writes and fsyncs one frame, rolling back on failure.
func (w *Writer) commit(frame []byte) error {
	if _, err := w.f.Write(frame); err != nil {
		w.rollback()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.rollback()
		return err
	}
	w.off += int64(len(frame))
	w.bytes += int64(len(frame))
	return nil
}

// rollback chops a partially written frame so the file ends at the last
// acknowledged record. If the chop cannot be made durable the writer is
// latched broken.
func (w *Writer) rollback() {
	if w.f.Truncate(w.off) != nil || w.f.Sync() != nil {
		w.broken = true
		return
	}
	if _, err := w.f.Seek(w.off, 0); err != nil {
		w.broken = true
	}
}

// Broken reports whether the writer has latched ErrWriterBroken.
func (w *Writer) Broken() bool { return w.broken }

// Close closes the underlying file.
func (w *Writer) Close() error { return w.f.Close() }

// ReplayResult describes what Replay found.
type ReplayResult struct {
	// Records is how many intact records were applied.
	Records int
	// LastSeq is the sequence number of the last applied record.
	LastSeq uint64
	// ValidSize is the byte offset of the end of the last intact record;
	// everything after it is a torn or corrupt tail.
	ValidSize int64
	// Truncated reports whether a torn/corrupt tail was found.
	Truncated bool
}

// Replay reads the WAL at path and calls apply for every intact record, in
// order. A torn or corrupt tail ends the replay and is reported, not an
// error; an apply error aborts the replay and is returned as-is. A missing
// or header-corrupt file returns ErrBadHeader (wrapped for context).
func Replay(fs fsx.FS, path string, apply func(Record) error) (*ReplayResult, error) {
	data, err := fsx.ReadAll(fs, path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize || [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: %s", ErrBadHeader, path)
	}
	if data[4] != Version {
		return nil, fmt.Errorf("wal: %s: unsupported version %d", path, data[4])
	}
	res := &ReplayResult{ValidSize: headerSize}
	off := headerSize
	for off < len(data) {
		rec, end, ok := parseRecord(data, off, res.LastSeq)
		if !ok {
			res.Truncated = true
			return res, nil
		}
		if rec.Op == opGroup {
			// A group frame expands to its members; the frame checksum
			// already vouched for all of them, so a malformed body can only
			// come from corruption that collided with the CRC — treat it
			// like a torn tail and stop before applying anything from it.
			members, ok := parseGroupBody(rec.Seq, rec.Payload)
			if !ok {
				res.Truncated = true
				return res, nil
			}
			for _, m := range members {
				if err := apply(m); err != nil {
					return res, err
				}
				res.Records++
				res.LastSeq = m.Seq
			}
		} else {
			if err := apply(rec); err != nil {
				return res, err
			}
			res.Records++
			res.LastSeq = rec.Seq
		}
		res.ValidSize = int64(end)
		off = end
	}
	return res, nil
}

// parseGroupBody decodes the members of a group frame whose first member
// carries sequence number firstSeq. ok is false when the body does not
// decode exactly: wrong count, reserved op, short payload or trailing bytes.
func parseGroupBody(firstSeq uint64, body []byte) ([]Record, bool) {
	count, n := binary.Uvarint(body)
	if n <= 0 || count < 2 || count > uint64(len(body)) {
		return nil, false
	}
	recs := make([]Record, 0, count)
	p := n
	for i := uint64(0); i < count; i++ {
		if p >= len(body) {
			return nil, false
		}
		op := Op(body[p])
		p++
		if op == opGroup {
			return nil, false
		}
		plen, n := binary.Uvarint(body[p:])
		if n <= 0 || plen > uint64(len(body)) {
			return nil, false
		}
		p += n
		if p+int(plen) > len(body) {
			return nil, false
		}
		recs = append(recs, Record{Seq: firstSeq + i, Op: op, Payload: body[p : p+int(plen)]})
		p += int(plen)
	}
	if p != len(body) {
		return nil, false
	}
	return recs, true
}

// parseRecord decodes one frame at off. ok is false for any torn, corrupt
// or out-of-sequence frame.
func parseRecord(data []byte, off int, prevSeq uint64) (rec Record, end int, ok bool) {
	seq, n := binary.Uvarint(data[off:])
	if n <= 0 || seq != prevSeq+1 {
		return rec, 0, false
	}
	p := off + n
	if p >= len(data) {
		return rec, 0, false
	}
	op := data[p]
	p++
	plen, n := binary.Uvarint(data[p:])
	if n <= 0 || plen > uint64(len(data)) {
		return rec, 0, false
	}
	p += n
	if p+int(plen)+4 > len(data) {
		return rec, 0, false
	}
	payload := data[p : p+int(plen)]
	p += int(plen)
	sum := binary.LittleEndian.Uint32(data[p : p+4])
	if crc32.ChecksumIEEE(data[off:p]) != sum {
		return rec, 0, false
	}
	return Record{Seq: seq, Op: Op(op), Payload: payload}, p + 4, true
}
