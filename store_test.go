package dkindex

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"dkindex/internal/faultfs"
	"dkindex/internal/fsx"
)

// fingerprint hashes the index's canonical serialization; two indexes with
// the same fingerprint answer every query identically.
func fingerprint(tb testing.TB, x *Index) string {
	tb.Helper()
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// nodeWithLabel returns the i-th data node carrying the label, resolved
// against the current snapshot — deterministic, so the same lookup works
// during the original run and during replay.
func nodeWithLabel(tb testing.TB, x *Index, label string, i int) NodeID {
	tb.Helper()
	g := x.Graph()
	for n := 0; n < g.NumNodes(); n++ {
		if g.LabelName(NodeID(n)) == label {
			if i == 0 {
				return NodeID(n)
			}
			i--
		}
	}
	tb.Fatalf("no node %d with label %q", i, label)
	return 0
}

const extraDocXML = `<extras><movie id="m9"><title/><year/></movie></extras>`

// storeSteps is the deterministic mutation battery the durability tests run:
// one of every journaled operation, exercising extent splits, decay, grafts,
// rebuilds and compaction.
func storeSteps(tb testing.TB) []func(*Index) error {
	edge := func(x *Index) (NodeID, NodeID) {
		return nodeWithLabel(tb, x, "director", 0), nodeWithLabel(tb, x, "title", 1)
	}
	return []func(*Index) error{
		func(x *Index) error { return x.SetRequirements(map[string]int{"title": 2, "name": 1}) },
		func(x *Index) error { f, t := edge(x); return x.AddEdge(f, t) },
		func(x *Index) error { return x.PromoteLabel("title", 2) },
		func(x *Index) error { _, err := x.AddDocument(strings.NewReader(extraDocXML), nil); return err },
		func(x *Index) error {
			return x.AddEdge(nodeWithLabel(tb, x, "actor", 0), nodeWithLabel(tb, x, "year", 0))
		},
		func(x *Index) error { return x.Demote(map[string]int{"title": 1, "name": 1}) },
		func(x *Index) error { f, t := edge(x); return x.RemoveEdge(f, t) },
		func(x *Index) error { return x.PromoteLabel("name", 1) },
		func(x *Index) error { _, _, err := x.Compact(); return err },
		// A group commit: three mutations land as one WAL group frame, so the
		// sweep also crashes inside the frame's write and fsync — recovery
		// must observe the whole batch or none of it.
		func(x *Index) error {
			f, t := edge(x)
			acks, err := x.ApplyBatch([]Mutation{
				{Op: MutAddEdge, From: f, To: t},
				{Op: MutPromote, Label: "movie", K: 1},
				{Op: MutRemoveEdge, From: f, To: t},
			})
			if err != nil {
				return err
			}
			for _, a := range acks {
				if a.Err != nil {
					return a.Err
				}
			}
			return nil
		},
	}
}

// checkpointAfter marks the steps (by index) after which the scenario
// checkpoints, so the sweep crosses rotation and checkpoint-write fault
// points too.
var checkpointAfter = map[int]bool{2: true, 5: true}

// runScenario creates a store in fs and drives the battery, checkpointing
// along the way. It returns the fingerprint after every acknowledged step
// (fps[i] = state once i steps are acknowledged) and how many steps were
// acknowledged before the first error, if any.
func runScenario(tb testing.TB, fs fsx.FS, dir string) (fps []string, acked int, err error) {
	idx, err := LoadXMLString(moviesXML, nil)
	if err != nil {
		tb.Fatal(err)
	}
	fps = append(fps, fingerprint(tb, idx))
	st, err := CreateStore(dir, idx, &StoreOptions{FS: fs})
	if err != nil {
		return fps, 0, err
	}
	defer st.Close()
	for i, step := range storeSteps(tb) {
		if err := step(idx); err != nil {
			return fps, i, err
		}
		fps = append(fps, fingerprint(tb, idx))
		if checkpointAfter[i] {
			if err := st.Checkpoint(); err != nil {
				return fps, i + 1, err
			}
		}
	}
	return fps, len(storeSteps(tb)), nil
}

func recoverStore(tb testing.TB, fs fsx.FS, dir string) (*Store, *RecoveryReport) {
	tb.Helper()
	st, rep, err := OpenStore(dir, &StoreOptions{FS: fs})
	if err != nil {
		tb.Fatalf("recovery failed: %v", err)
	}
	return st, rep
}

func TestStoreRecoversFromWALOnly(t *testing.T) {
	fs := faultfs.New()
	fps, acked, err := runScenario(t, fs, "store")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a hard power cut with everything properly synced: recovery
	// must reproduce the final acknowledged state from checkpoints + logs.
	fs.Crash()
	fs.Reset()
	st, rep := recoverStore(t, fs, "store")
	defer st.Close()
	if got := fingerprint(t, st.Index()); got != fps[acked] {
		t.Fatalf("recovered state differs from last acknowledged state")
	}
	if rep.Replayed == 0 {
		t.Error("expected WAL records to replay (steps after the last checkpoint)")
	}
	if rep.TruncatedTail || rep.ChainBroken {
		t.Errorf("clean shutdown reported damage: %+v", rep)
	}
}

func TestStoreCorruptCheckpointFallsBackToChain(t *testing.T) {
	fs := faultfs.New()
	fps, acked, err := runScenario(t, fs, "store")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint; the older checkpoint plus the intact
	// log chain must still reconstruct the acknowledged state.
	names, err := fs.ReadDir("store")
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, n := range names {
		if strings.HasPrefix(n, checkpointPrefix) && n > newest {
			newest = n
		}
	}
	if newest == "" {
		t.Fatal("no checkpoint written")
	}
	sz, err := fs.Size(filepath.Join("store", newest))
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Corrupt(filepath.Join("store", newest), int(sz/2), []byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	st, rep := recoverStore(t, fs, "store")
	defer st.Close()
	if got := fingerprint(t, st.Index()); got != fps[acked] {
		t.Fatalf("recovered state differs after checkpoint corruption")
	}
	if len(rep.CorruptCheckpoints) != 1 || rep.CorruptCheckpoints[0] != newest {
		t.Errorf("report did not name the corrupt checkpoint: %+v", rep)
	}
	if rep.Checkpoint == newest {
		t.Error("recovery claims to have loaded the corrupt checkpoint")
	}
}

// TestStoreCrashPointSweep is the central durability proof: it re-runs the
// scenario once per I/O operation, injecting a power cut (plain and torn) at
// that operation, recovers, and requires the recovered state to equal the
// state after the last acknowledged mutation — no lost acks, no phantom
// mutations, at every single crash point.
func TestStoreCrashPointSweep(t *testing.T) {
	probe := faultfs.New()
	if _, _, err := runScenario(t, probe, "store"); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 40 {
		t.Fatalf("scenario too small to be interesting: %d I/O ops", total)
	}
	for _, mode := range []faultfs.Mode{faultfs.ModeCrash, faultfs.ModeTorn} {
		t.Run(mode.String(), func(t *testing.T) {
			for n := 1; n <= total; n++ {
				fs := faultfs.New()
				fs.FailAt(n, mode)
				fps, acked, err := runScenario(t, fs, "store")
				if err == nil {
					t.Fatalf("fault at op %d/%d never fired", n, total)
				}
				if !fs.Crashed() {
					t.Fatalf("fault at op %d returned %v without crashing", n, err)
				}
				fs.Reset()
				if !StoreExists(fs, "store") {
					// The crash hit before the initial checkpoint became
					// durable; creation never succeeded, so there is
					// legitimately nothing to recover.
					if acked != 0 {
						t.Fatalf("crash at op %d lost the store after %d acknowledged steps", n, acked)
					}
					continue
				}
				st, _ := recoverStore(t, fs, "store")
				if got := fingerprint(t, st.Index()); got != fps[acked] {
					t.Fatalf("crash at op %d (%d acked): recovered state differs", n, acked)
				}
				// The recovered store accepts new work.
				if err := st.Index().PromoteLabel("director", 1); err != nil {
					t.Fatalf("crash at op %d: post-recovery mutation failed: %v", n, err)
				}
				if err := st.Close(); err != nil {
					t.Fatalf("crash at op %d: close failed: %v", n, err)
				}
			}
		})
	}
}

func TestStoreFailedAppendAbortsMutation(t *testing.T) {
	fs := faultfs.New()
	idx, err := LoadXMLString(moviesXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := CreateStore("store", idx, &StoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	before := fingerprint(t, idx)
	gen := idx.Stats().Generation

	// The next write (the WAL append) fails; the filesystem stays alive.
	fs.FailAt(1, faultfs.ModeError)
	if err := idx.PromoteLabel("title", 2); err == nil {
		t.Fatal("mutation acknowledged despite failed WAL append")
	}
	if got := fingerprint(t, idx); got != before {
		t.Error("aborted mutation changed the served state")
	}
	if idx.Stats().Generation != gen {
		t.Error("aborted mutation bumped the snapshot generation")
	}

	// The log rolled back to a record boundary, so the next mutation lands.
	if err := idx.PromoteLabel("title", 2); err != nil {
		t.Fatalf("mutation after aborted append failed: %v", err)
	}
	fs.Crash()
	fs.Reset()
	st2, rep := recoverStore(t, fs, "store")
	defer st2.Close()
	if got := fingerprint(t, st2.Index()); got != fingerprint(t, idx) {
		t.Error("recovered state differs after aborted append + retry")
	}
	if rep.Replayed != 1 {
		t.Errorf("replayed %d records, want 1", rep.Replayed)
	}
}

func TestStoreRefusesDoubleManagement(t *testing.T) {
	fs := faultfs.New()
	idx, err := LoadXMLString(moviesXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CreateStore("store", idx, &StoreOptions{FS: fs}); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateStore("other", idx, &StoreOptions{FS: fs}); err == nil {
		t.Error("second store attached to the same index")
	}
	if _, err := CreateStore("store", idx, &StoreOptions{FS: fs}); err == nil {
		t.Error("CreateStore clobbered an existing store directory")
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := idx.Reload(&buf); err == nil || !strings.Contains(err.Error(), "store") {
		t.Errorf("Reload of a managed index = %v, want store-refusal", err)
	}
}

func TestStoreClosedRejectsMutations(t *testing.T) {
	fs := faultfs.New()
	idx, err := LoadXMLString(moviesXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := CreateStore("store", idx, &StoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); !errors.Is(err, ErrStoreClosed) {
		t.Errorf("Checkpoint after Close = %v, want ErrStoreClosed", err)
	}
	// The index detaches and keeps working in memory.
	if err := idx.PromoteLabel("title", 1); err != nil {
		t.Errorf("detached index rejected mutation: %v", err)
	}
}

func TestStorePruneKeepsRetention(t *testing.T) {
	fs := faultfs.New()
	idx, err := LoadXMLString(moviesXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := CreateStore("store", idx, &StoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 5; i++ {
		if err := idx.PromoteLabel("title", i%3); err != nil {
			t.Fatal(err)
		}
		if err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fs.ReadDir("store")
	if err != nil {
		t.Fatal(err)
	}
	var ckpts, wals int
	for _, n := range names {
		if strings.HasPrefix(n, checkpointPrefix) {
			ckpts++
		}
		if strings.HasPrefix(n, walPrefix) {
			wals++
		}
	}
	if ckpts != 2 {
		t.Errorf("retained %d checkpoints, want 2: %v", ckpts, names)
	}
	if wals != 2 {
		t.Errorf("retained %d wal files, want 2: %v", wals, names)
	}
	st2, _ := recoverStore(t, fs, "store")
	defer st2.Close()
	if got := fingerprint(t, st2.Index()); got != fingerprint(t, idx) {
		t.Error("recovered state differs after pruning")
	}
}

// TestStoreOSRoundTrip exercises the real filesystem end to end: create,
// mutate, checkpoint, close, recover from disk.
func TestStoreOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fps, acked, err := runScenario(t, fsx.OS{}, filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	if !StoreExists(nil, filepath.Join(dir, "store")) {
		t.Fatal("StoreExists does not see the store")
	}
	st, rep := recoverStore(t, fsx.OS{}, filepath.Join(dir, "store"))
	defer st.Close()
	if got := fingerprint(t, st.Index()); got != fps[acked] {
		t.Fatal("recovered state differs on the real filesystem")
	}
	if rep.TruncatedTail || rep.ChainBroken {
		t.Errorf("clean on-disk store reported damage: %+v", rep)
	}
	// And it keeps accepting work across another cycle.
	if err := st.Index().PromoteLabel("director", 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}
