package dkindex

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dkindex/internal/obs"
)

func eventTypes(events []obs.Event) map[obs.EventType]int {
	out := make(map[obs.EventType]int)
	for _, e := range events {
		out[e.Type]++
	}
	return out
}

// TestObserveLifecycleEvents runs every adaptation operation on an observed
// index and checks the typed events each must emit.
func TestObserveLifecycleEvents(t *testing.T) {
	idx := open(t)
	o := obs.NewObserver()
	idx.Observe(o)

	if err := idx.PromoteLabel("title", 2); err != nil {
		t.Fatal(err)
	}
	if err := idx.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := idx.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	idx.Demote(map[string]int{"title": 0})
	idx.SetRequirements(map[string]int{"title": 1})
	if _, err := idx.AddDocument(strings.NewReader("<movieDB><movie><title/></movie></movieDB>"), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := idx.Compact(); err != nil {
		t.Fatal(err)
	}

	counts := eventTypes(o.Events.Recent(0))
	for _, want := range []obs.EventType{
		obs.EventPromote, obs.EventEdgeAdd, obs.EventEdgeRemove,
		obs.EventDemote, obs.EventRetune, obs.EventSubgraphAdd, obs.EventCompact,
	} {
		if counts[want] == 0 {
			t.Errorf("no %s event emitted (got %v)", want, counts)
		}
	}
	// Promoting "title" to 2 on the label-split index must split extents
	// (title nodes have structurally different ancestries in moviesXML).
	if counts[obs.EventExtentSplit] == 0 {
		t.Errorf("promotion emitted no extent_split events (got %v)", counts)
	}

	var promote obs.Event
	for _, e := range o.Events.Recent(0) {
		if e.Type == obs.EventPromote {
			promote = e
			break
		}
	}
	if promote.Label != "title" || promote.K != 2 {
		t.Errorf("promote event = %+v, want label=title k=2", promote)
	}
	if promote.NodesAfter <= promote.NodesBefore {
		t.Errorf("promote did not grow the index: %d -> %d", promote.NodesBefore, promote.NodesAfter)
	}
	if promote.Created == 0 || promote.Visited == 0 {
		t.Errorf("promote event missing work counters: %+v", promote)
	}
}

// TestObserveAutoPromoteEvent drives the auto-promoting index past its
// threshold and expects the auto_promote lifecycle event.
func TestObserveAutoPromoteEvent(t *testing.T) {
	idx := open(t)
	o := obs.NewObserver()
	idx.Observe(o)
	idx.SetAutoPromote(1)

	// The label-split index validates this query, firing promotion at once.
	if _, stats, err := idx.Query("director.movie.title"); err != nil {
		t.Fatal(err)
	} else if stats.Validations == 0 {
		t.Fatal("expected a validating query to trigger auto-promotion")
	}
	counts := eventTypes(o.Events.Recent(0))
	if counts[obs.EventAutoPromote] != 1 {
		t.Fatalf("auto_promote events = %d, want 1 (%v)", counts[obs.EventAutoPromote], counts)
	}
	// Repeating the query now answers soundly from the summary.
	if _, stats, err := idx.Query("director.movie.title"); err != nil {
		t.Fatal(err)
	} else if stats.Validations != 0 {
		t.Error("query still validates after auto-promotion")
	}
}

// TestObserveReloadEvent round-trips the index through Save/Reload and
// expects a codec_reload event plus working instrumentation afterwards.
func TestObserveReloadEvent(t *testing.T) {
	idx := open(t)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver()
	idx.Observe(o)
	if err := idx.Reload(&buf); err != nil {
		t.Fatal(err)
	}
	if counts := eventTypes(o.Events.Recent(0)); counts[obs.EventCodecReload] != 1 {
		t.Fatalf("codec_reload events = %d, want 1", counts[obs.EventCodecReload])
	}
	// The reloaded graphs must be observed too: a promotion still emits.
	if err := idx.PromoteLabel("title", 1); err != nil {
		t.Fatal(err)
	}
	if counts := eventTypes(o.Events.Recent(0)); counts[obs.EventPromote] != 1 {
		t.Fatal("promotion after reload not observed")
	}
}

// TestObservedCostBitIdentical runs the same queries on an observed index
// (trace sampling every query) and an unobserved twin, and requires identical
// results and bit-identical cost counters.
func TestObservedCostBitIdentical(t *testing.T) {
	plain := open(t)
	observed := open(t)
	o := obs.NewObserverWith(obs.NewRegistry(), obs.NewStream(16), obs.NewTracer(1, 8))
	observed.Observe(o)

	type result struct {
		res   []NodeID
		stats QueryStats
	}
	runAll := func(x *Index) []result {
		var out []result
		for _, q := range []string{"director.movie.title", "name", "movieDB.movie"} {
			res, stats, err := x.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, result{res, stats})
		}
		res, stats, err := x.QueryRPE("movieDB//name")
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, result{res, stats})
		res, stats, err = x.QueryTwig("movie[actor.name].title")
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, result{res, stats})
		return out
	}
	got, want := runAll(observed), runAll(plain)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("observed runs = %+v\nwant (unobserved) %+v", got, want)
	}
	if o.Tracer.Sampled() != 5 {
		t.Errorf("traces sampled = %d, want 5", o.Tracer.Sampled())
	}
	for _, tr := range o.Tracer.Recent(0) {
		if len(tr.Spans) == 0 {
			t.Errorf("trace %s %q has no spans", tr.Kind, tr.Query)
		}
	}
}

// TestObserveMetricsExposition checks the metrics the facade feeds: query
// counters by kind, size gauges matching Stats, and dangling-ref counts from
// document loads.
func TestObserveMetricsExposition(t *testing.T) {
	idx := open(t)
	o := obs.NewObserver()
	idx.Observe(o)

	if _, _, err := idx.Query("director.movie.title"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := idx.Query(""); err == nil {
		t.Fatal("empty query accepted")
	}
	// One dangling IDREF in the grafted document.
	if _, err := idx.AddDocument(strings.NewReader(`<movieDB><actor movieref="nosuch"><name/></actor></movieDB>`), nil); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := o.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheusText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("metrics output unparsable: %v", err)
	}
	find := func(name, labelKey, labelVal string) float64 {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing", name)
		}
		for _, s := range f.Samples {
			if labelKey == "" || s.Labels[labelKey] == labelVal {
				return s.Value
			}
		}
		t.Fatalf("%s{%s=%q} missing", name, labelKey, labelVal)
		return 0
	}
	if v := find(obs.MetricQueries, "kind", "path"); v != 1 {
		t.Errorf("path queries = %v, want 1", v)
	}
	if v := find(obs.MetricQueryErrors, "kind", "path"); v != 1 {
		t.Errorf("path query errors = %v, want 1", v)
	}
	if v := find(obs.MetricDanglingRefs, "", ""); v != 1 {
		t.Errorf("dangling refs = %v, want 1", v)
	}
	s := idx.Stats()
	if v := find(obs.MetricIndexNodes, "", ""); int(v) != s.IndexNodes {
		t.Errorf("index nodes gauge = %v, Stats says %d", v, s.IndexNodes)
	}
	if v := find(obs.MetricDataNodes, "", ""); int(v) != s.DataNodes {
		t.Errorf("data nodes gauge = %v, Stats says %d", v, s.DataNodes)
	}
}

// TestObserveBuildMetrics checks the construction observability the facade
// feeds on every rebuild: a build lifecycle event with the trigger in its
// detail, the per-trigger build counter, and the construction histograms.
func TestObserveBuildMetrics(t *testing.T) {
	idx := open(t)
	o := obs.NewObserver()
	idx.Observe(o)

	if err := idx.SetRequirements(map[string]int{"title": 2}); err != nil {
		t.Fatal(err)
	}
	if err := idx.Demote(map[string]int{"title": 1}); err != nil {
		t.Fatal(err)
	}

	types := eventTypes(o.Events.Recent(0))
	if types[obs.EventBuild] != 2 {
		t.Fatalf("build events = %d, want 2 (events: %v)", types[obs.EventBuild], types)
	}
	var detail string
	for _, e := range o.Events.Recent(0) {
		if e.Type == obs.EventBuild {
			detail = e.Detail
			break
		}
	}
	if !strings.Contains(detail, "trigger=set_requirements") || !strings.Contains(detail, "rounds=") {
		t.Fatalf("build event detail = %q", detail)
	}

	var sb strings.Builder
	if err := o.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheusText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("metrics output unparsable: %v", err)
	}
	byTrigger := map[string]float64{}
	for _, s := range fams[obs.MetricBuilds].Samples {
		byTrigger[s.Labels["trigger"]] = s.Value
	}
	if byTrigger["set_requirements"] != 1 || byTrigger["demote"] != 1 {
		t.Fatalf("build counters = %v", byTrigger)
	}
	for _, fam := range []string{obs.MetricBuildSeconds, obs.MetricBuildRounds, obs.MetricBuildCSRSeconds} {
		if fams[fam] == nil || fams[fam].Type != "histogram" {
			t.Errorf("family %s missing or not histogram", fam)
		}
	}
	if fams[obs.MetricBuildPeakBlocks] == nil {
		t.Error("peak blocks gauge missing")
	}
}
