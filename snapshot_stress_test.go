package dkindex

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dkindex/internal/datagen"
	"dkindex/internal/graph"
	"dkindex/internal/workload"
)

// TestSnapshotStressConcurrent races lock-free readers against a mutating
// writer (run under -race, as `make ci` does). Readers assert snapshot
// consistency: every query succeeds, generations never go backwards within
// one goroutine, and every path result carries the query's final label when
// resolved against the snapshot that answered it — which would be violated
// if a query ever observed a half-published mutation.
func TestSnapshotStressConcurrent(t *testing.T) {
	var doc bytes.Buffer
	if err := datagen.XMark(datagen.XMarkScale(0.02)).WriteXML(&doc); err != nil {
		t.Fatal(err)
	}
	idx, err := LoadXML(bytes.NewReader(doc.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Tune(40, 11); err != nil {
		t.Fatal(err)
	}
	idx.WatchLoad()
	var saved bytes.Buffer
	if err := idx.Save(&saved); err != nil {
		t.Fatal(err)
	}

	// Fixed query texts, valid across every mutation (label names survive
	// reloads and document grafts; Compact is the only id-renumbering op
	// and the writer below does not use it).
	w, err := workload.Generate(idx.Graph(), workload.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	labels := idx.Graph().Labels()
	paths := make([]string, 0, 24)
	for _, q := range w.Queries[:min(24, len(w.Queries))] {
		paths = append(paths, q.Format(labels))
	}
	reqs := make([]Request, 0, len(paths)+4)
	for _, p := range paths {
		reqs = append(reqs, Request{Kind: KindPath, Text: p})
	}
	first := strings.Split(paths[0], ".")
	reqs = append(reqs,
		Request{Kind: KindRPE, Text: first[0] + "//" + first[len(first)-1]},
		Request{Kind: KindRPE, Text: "_." + first[len(first)-1]},
		Request{Kind: KindTwig, Text: first[len(first)-2] + "[" + first[len(first)-1] + "]"},
		Request{Kind: KindPath, Text: paths[0], Limit: 1},
	)

	const (
		readers          = 4
		queriesPerReader = 1000
		writerOps        = 150
	)
	var (
		wg   sync.WaitGroup
		hits atomic.Int64
	)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var lastGen uint64
			for i := 0; i < queriesPerReader; i++ {
				req := reqs[rng.Intn(len(reqs))]
				res, err := idx.Run(req)
				if err != nil {
					t.Errorf("reader: %s %q: %v", req.Kind, req.Text, err)
					return
				}
				if res.Generation < lastGen {
					t.Errorf("reader: generation went backwards: %d -> %d", lastGen, res.Generation)
					return
				}
				lastGen = res.Generation
				if res.CacheHit {
					hits.Add(1)
				}
				if req.Kind == KindPath {
					want := req.Text[strings.LastIndexByte(req.Text, '.')+1:]
					for _, n := range res.Nodes {
						if got := res.LabelName(n); got != want {
							t.Errorf("reader: %q returned node labeled %q (snapshot torn?)", req.Text, got)
							return
						}
					}
				}
				if res.Total < len(res.Nodes) {
					t.Errorf("reader: total %d < listed %d", res.Total, len(res.Nodes))
					return
				}
			}
		}(int64(100 + r))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		genDoc := `<site><regions><namerica><item><name/></item></namerica></regions></site>`
		for i := 0; i < writerOps; i++ {
			g := idx.Graph()
			switch i % 7 {
			case 0, 1:
				u := NodeID(rng.Intn(g.NumNodes()))
				v := NodeID(rng.Intn(g.NumNodes()))
				if u != v && v != g.Root() {
					if err := idx.AddEdge(u, v); err != nil {
						t.Errorf("writer: AddEdge: %v", err)
						return
					}
				}
			case 2:
				u := NodeID(rng.Intn(g.NumNodes()))
				if ch := g.Children(u); len(ch) > 0 {
					if v := ch[rng.Intn(len(ch))]; v != g.Root() {
						if err := idx.RemoveEdge(u, v); err != nil {
							t.Errorf("writer: RemoveEdge: %v", err)
							return
						}
					}
				}
			case 3:
				name := g.Labels().Name(graph.LabelID(rng.Intn(g.Labels().Len())))
				if err := idx.PromoteLabel(name, 1+rng.Intn(3)); err != nil {
					t.Errorf("writer: PromoteLabel: %v", err)
					return
				}
			case 4:
				if _, err := idx.AddDocument(strings.NewReader(genDoc), nil); err != nil {
					t.Errorf("writer: AddDocument: %v", err)
					return
				}
			case 5:
				// The recorder may have been reset by a racing Reload;
				// an empty-load refusal is fine, anything else is not.
				if _, err := idx.Optimize(0); err != nil &&
					!strings.Contains(err.Error(), "no observed load") {
					t.Errorf("writer: Optimize: %v", err)
					return
				}
			case 6:
				if err := idx.Reload(bytes.NewReader(saved.Bytes())); err != nil {
					t.Errorf("writer: Reload: %v", err)
					return
				}
			}
		}
	}()

	wg.Wait()
	if hits.Load() == 0 {
		t.Error("no cache hits across the whole stress run")
	}
	if gen := idx.Generation(); gen == 0 {
		t.Error("writer published no snapshots")
	}
	if err := idx.Audit(2); err != nil {
		t.Fatalf("final audit: %v", err)
	}
}
