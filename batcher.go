package dkindex

import (
	"errors"
	"sync"
	"time"
)

// BatchOptions configures StartBatching.
type BatchOptions struct {
	// MaxBatch caps how many mutations one group commit carries. Values
	// below 1 mean DefaultMaxBatch. An ApplyBatch larger than the cap still
	// commits as one group — client batches are never split.
	MaxBatch int
	// FlushInterval is the coalescing window: after the first mutation of a
	// window arrives, the committer waits this long (or until MaxBatch fills)
	// before flushing, trading acknowledgement latency for bigger groups.
	// Zero flushes as soon as the committer is free — "natural" group
	// commit: whatever queued while the previous fsync ran forms the next
	// group, adding no artificial latency.
	FlushInterval time.Duration
}

// DefaultMaxBatch is the group-commit size cap when BatchOptions doesn't set
// one.
const DefaultMaxBatch = 128

// batcher coalesces concurrent mutations into group commits. Sequence
// numbers are assigned under its lock at enqueue, and the queue drains in
// FIFO order by a single committer at a time (the flusher goroutine, then
// StopBatching's final drain) — so commit order always matches sequence
// order, which is what makes the watermark a plain high-water mark.
type batcher struct {
	x        *Index
	maxBatch int
	interval time.Duration

	mu      sync.Mutex
	queue   [][]*preparedMutation // client batches; never split across commits
	queued  int                   // total mutations across queue
	stopped bool

	wake    chan struct{} // buffered(1): "the queue is non-empty"
	quit    chan struct{} // closed by StopBatching
	done    chan struct{} // closed when the flusher exits
	drained chan struct{} // closed when the final drain finished and the index disarmed
}

// StartBatching arms the group-commit batcher: from now on Apply and
// ApplyBatch enqueue into a shared window that a background committer flushes
// as one WAL group append and one snapshot swap per window. It fails if
// batching is already armed. Pair with StopBatching, which drains the queue
// before disarming.
func (x *Index) StartBatching(opts BatchOptions) error {
	b := &batcher{
		x:        x,
		maxBatch: opts.MaxBatch,
		interval: opts.FlushInterval,
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		drained:  make(chan struct{}),
	}
	if b.maxBatch < 1 {
		b.maxBatch = DefaultMaxBatch
	}
	if b.interval < 0 {
		b.interval = 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.batch.Load() != nil {
		return errors.New("dkindex: batching already armed")
	}
	x.batch.Store(b)
	go b.loop()
	return nil
}

// StopBatching drains and disarms the batcher: queued mutations are group-
// committed, their waiters released, and subsequent Apply calls commit
// directly. No-op when batching is not armed; safe to call concurrently
// (every caller returns only after the drain completed).
func (x *Index) StopBatching() {
	b := x.batch.Load()
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		<-b.drained
		return
	}
	b.stopped = true
	b.mu.Unlock()
	close(b.quit)
	<-b.done
	// Final drain under one hold of the writer mutex: nothing can interleave,
	// so the queued sequence numbers commit in order before any direct
	// committer (which would mint higher ones) gets in.
	x.mu.Lock()
	for {
		chunk := b.take()
		if chunk == nil {
			break
		}
		x.commitLocked(chunk)
		for _, p := range chunk {
			close(p.done)
		}
	}
	x.batch.Store(nil)
	x.mu.Unlock()
	close(b.drained)
}

// Batching reports whether the group-commit batcher is armed.
func (x *Index) Batching() bool { return x.batch.Load() != nil }

// enqueue adds one client batch to the window, assigning its sequence
// numbers, and wakes the committer. It reports false when the batcher is
// stopping; the submitter waits out the drain and re-routes.
func (b *batcher) enqueue(ps []*preparedMutation) bool {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return false
	}
	for _, p := range ps {
		p.seq = b.x.mutSeq.Add(1)
	}
	b.queue = append(b.queue, ps)
	b.queued += len(ps)
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
	return true
}

// take pops the next group commit: whole client batches up to maxBatch
// mutations (always at least one batch, so oversized client batches stay
// unsplit). Nil when the queue is empty.
func (b *batcher) take() []*preparedMutation {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) == 0 {
		return nil
	}
	var out []*preparedMutation
	for len(b.queue) > 0 {
		el := b.queue[0]
		if len(out) > 0 && len(out)+len(el) > b.maxBatch {
			break
		}
		out = append(out, el...)
		b.queue[0] = nil
		b.queue = b.queue[1:]
		b.queued -= len(el)
		if len(out) >= b.maxBatch {
			break
		}
	}
	if len(b.queue) == 0 {
		b.queue = nil // release the drained backing array
	}
	return out
}

func (b *batcher) size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queued
}

// loop is the committer: it sleeps until mutations queue, optionally waits
// out the coalescing window, then flushes the queue as group commits. On
// quit it exits immediately; StopBatching performs the final drain.
func (b *batcher) loop() {
	defer close(b.done)
	for {
		select {
		case <-b.quit:
			return
		case <-b.wake:
		}
		if b.interval > 0 {
			t := time.NewTimer(b.interval)
		window:
			for {
				select {
				case <-b.quit:
					t.Stop()
					return
				case <-b.wake:
					if b.size() >= b.maxBatch {
						break window
					}
				case <-t.C:
					break window
				}
			}
			t.Stop()
		}
		for {
			chunk := b.take()
			if chunk == nil {
				break
			}
			b.x.mu.Lock()
			b.x.commitLocked(chunk)
			b.x.mu.Unlock()
			for _, p := range chunk {
				close(p.done)
			}
		}
	}
}
