package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dkindex"
	"dkindex/internal/faultfs"
	"dkindex/internal/obs"
)

const doc = `<movieDB><director><name/><movie><title/></movie></director></movieDB>`

// syncBuffer guards the log sink: handler goroutines and the serve loop both
// write to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func writeDoc(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSetupAndServe(t *testing.T) {
	path := writeDoc(t, doc)
	var out bytes.Buffer
	errb := &syncBuffer{}
	cfg, code := setup([]string{"-in", path, "-req", "title=2", "-addr", ":0"}, &out, errb)
	if code != 0 {
		t.Fatalf("setup exit %d: %s", code, errb.String())
	}
	if cfg.addr != ":0" || cfg.handler == nil {
		t.Fatal("setup returned no handler")
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Errorf("banner: %s", out.String())
	}
	ts := httptest.NewServer(cfg.handler)
	resp, err := ts.Client().Get(ts.URL + "/query?path=director.movie.title")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("query status = %d", resp.StatusCode)
	}
	ts.Close() // drain handlers before reading the log
	log := errb.String()
	if !strings.Contains(log, "msg=request") || !strings.Contains(log, "path=/query") {
		t.Errorf("no request log line:\n%s", log)
	}
}

func TestSetupErrors(t *testing.T) {
	var out bytes.Buffer
	errb := &syncBuffer{}
	if _, code := setup(nil, &out, errb); code != 2 {
		t.Errorf("no input exit = %d, want 2", code)
	}
	if _, code := setup([]string{"-badflag"}, &out, errb); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if _, code := setup([]string{"-in", "/nonexistent.xml"}, &out, errb); code != 1 {
		t.Errorf("missing file exit = %d, want 1", code)
	}
	path := writeDoc(t, doc)
	if _, code := setup([]string{"-in", path, "-req", "x=bad"}, &out, errb); code != 1 {
		t.Errorf("bad req exit = %d, want 1", code)
	}
}

// TestSetupPprofFlag checks -pprof mounts the profiling handlers.
func TestSetupPprofFlag(t *testing.T) {
	path := writeDoc(t, doc)
	var out bytes.Buffer
	cfg, code := setup([]string{"-in", path, "-pprof"}, &out, &syncBuffer{})
	if code != 0 {
		t.Fatalf("setup exit %d", code)
	}
	ts := httptest.NewServer(cfg.handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof cmdline = %d with -pprof, want 200", resp.StatusCode)
	}
}

// TestSetupDanglingWarning loads a document with a dangling IDREF and expects
// a structured warning plus the counter metric.
func TestSetupDanglingWarning(t *testing.T) {
	path := writeDoc(t, `<movieDB><actor movieref="nosuch"><name/></actor></movieDB>`)
	var out bytes.Buffer
	errb := &syncBuffer{}
	cfg, code := setup([]string{"-in", path}, &out, errb)
	if code != 0 {
		t.Fatalf("setup exit %d: %s", code, errb.String())
	}
	log := errb.String()
	if !strings.Contains(log, "dangling") || !strings.Contains(log, "nosuch") {
		t.Errorf("no dangling-reference warning:\n%s", log)
	}
	var sb strings.Builder
	if err := cfg.observer.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dk_load_dangling_refs_total 1") {
		t.Errorf("dangling-ref counter not set:\n%s", sb.String())
	}
}

// TestDataDirDurableRestart drives the full lifecycle twice: the first run
// creates a store from -in, mutates through the API and shuts down (folding
// the log into a final checkpoint); the second run recovers from -data-dir
// alone and must still carry the mutation.
func TestDataDirDurableRestart(t *testing.T) {
	path := writeDoc(t, doc)
	dir := filepath.Join(t.TempDir(), "store")

	// First run: create the store and promote title to k=2.
	errb := &syncBuffer{}
	cfg, code := setup([]string{"-in", path, "-data-dir", dir, "-addr", ":0"}, &bytes.Buffer{}, errb)
	if code != 0 {
		t.Fatalf("setup exit %d: %s", code, errb.String())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() { done <- serve(ctx, ln, cfg) }()
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/promote", ln.Addr()),
		"application/json", strings.NewReader(`{"label":"title","k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("promote status = %d", resp.StatusCode)
	}
	cancel()
	select {
	case exit := <-done:
		if exit != 0 {
			t.Fatalf("serve exit = %d: %s", exit, errb.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down")
	}

	// Second run: -data-dir alone recovers, and -in/-req are reported as
	// overridden by the durable state.
	errb2 := &syncBuffer{}
	cfg2, code := setup([]string{"-data-dir", dir, "-in", path, "-req", "name=1", "-addr", ":0"},
		&bytes.Buffer{}, errb2)
	if code != 0 {
		t.Fatalf("restart setup exit %d: %s", code, errb2.String())
	}
	defer cfg2.store.Close()
	log := errb2.String()
	if !strings.Contains(log, "store recovered") {
		t.Errorf("no recovery log line:\n%s", log)
	}
	if !strings.Contains(log, "ignored") {
		t.Errorf("no override warning for -in/-req:\n%s", log)
	}
	ts := httptest.NewServer(cfg2.handler)
	defer ts.Close()
	resp, err = ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		MaxK int `json:"maxK"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.MaxK != 2 {
		t.Errorf("recovered maxK = %d, want 2 (promotion lost)", stats.MaxK)
	}
	// Readiness reflects the serving state.
	rr, err := ts.Client().Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != 200 {
		t.Errorf("readyz = %d after setup", rr.StatusCode)
	}
}

// TestGracefulShutdown runs the real serve loop, sends traffic, cancels the
// context (the SIGINT/SIGTERM path) and expects a clean exit with a final
// metrics snapshot in the log.
func TestGracefulShutdown(t *testing.T) {
	path := writeDoc(t, doc)
	var out bytes.Buffer
	errb := &syncBuffer{}
	cfg, code := setup([]string{"-in", path}, &out, errb)
	if code != 0 {
		t.Fatalf("setup exit %d: %s", code, errb.String())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() { done <- serve(ctx, ln, cfg) }()

	url := fmt.Sprintf("http://%s/query?path=director.movie.title", ln.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query status = %d", resp.StatusCode)
	}

	cancel()
	select {
	case exit := <-done:
		if exit != 0 {
			t.Errorf("serve exit = %d, want 0", exit)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down")
	}
	log := errb.String()
	if !strings.Contains(log, "shutdown signal received") {
		t.Errorf("no shutdown log line:\n%s", log)
	}
	if !strings.Contains(log, "final metrics snapshot") || !strings.Contains(log, "dk_queries_total") {
		t.Errorf("final metrics snapshot missing or empty:\n%s", log)
	}
}

// faultyStore builds a store on a fault-injecting filesystem with one
// un-checkpointed mutation, ready for checkpointLoop to pick up.
func faultyStore(t *testing.T) (*faultfs.MemFS, *dkindex.Store) {
	t.Helper()
	fs := faultfs.New()
	idx, err := dkindex.LoadXMLString(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dkindex.CreateStore("store", idx, &dkindex.StoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := idx.PromoteLabel("title", 1); err != nil {
		t.Fatal(err)
	}
	return fs, st
}

func ckptTestConfig(st *dkindex.Store, maxFailures int, errb *syncBuffer) *config {
	return &config{
		store:     st,
		ckptEvery: 2 * time.Millisecond,
		ckptRetry: ckptRetryPolicy{floor: time.Millisecond, cap: 4 * time.Millisecond, maxFailures: maxFailures},
		logger:    slog.New(slog.NewTextHandler(errb, nil)),
		observer:  obs.NewObserverWith(obs.NewRegistry(), obs.NewStream(64), obs.NewTracer(0, 8)),
	}
}

func countRetryEvents(cfg *config) int {
	n := 0
	for _, e := range cfg.observer.Events.Recent(0) {
		if e.Type == obs.EventCheckpointRetry {
			n++
		}
	}
	return n
}

// TestCheckpointLoopRetriesTransientFailure injects one checkpoint failure:
// the loop must emit a checkpoint_retry event, retry on its backoff schedule
// rather than waiting for the next tick, succeed, and never escalate.
func TestCheckpointLoopRetriesTransientFailure(t *testing.T) {
	fs, st := faultyStore(t)
	epoch0 := st.Epoch()
	errb := &syncBuffer{}
	cfg := ckptTestConfig(st, 8, errb)

	fs.FailAt(1, faultfs.ModeError) // first write of the next checkpoint fails
	stop := make(chan struct{})
	fatal := make(chan error, 1)
	done := make(chan struct{})
	go func() { checkpointLoop(cfg, stop, fatal); close(done) }()

	deadline := time.Now().Add(5 * time.Second)
	for st.Epoch() == epoch0 {
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never succeeded after the transient failure")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	select {
	case err := <-fatal:
		t.Fatalf("transient failure escalated to fatal: %v", err)
	default:
	}
	if countRetryEvents(cfg) == 0 {
		t.Error("no checkpoint_retry event emitted")
	}
	if !strings.Contains(errb.String(), "checkpoint failed, retrying with backoff") {
		t.Errorf("no retry warning in log:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "checkpoint written") {
		t.Errorf("no success line after retry:\n%s", errb.String())
	}
}

// TestCheckpointLoopEscalatesAfterCap crashes the filesystem outright so no
// checkpoint can ever succeed: the loop must emit a retry event per failed
// attempt and report fatal only once the consecutive-failure cap is hit.
func TestCheckpointLoopEscalatesAfterCap(t *testing.T) {
	fs, st := faultyStore(t)
	errb := &syncBuffer{}
	cfg := ckptTestConfig(st, 3, errb)

	fs.Crash() // every filesystem operation fails until Reset
	stop := make(chan struct{})
	defer close(stop)
	fatal := make(chan error, 1)
	done := make(chan struct{})
	go func() { checkpointLoop(cfg, stop, fatal); close(done) }()

	select {
	case err := <-fatal:
		if !strings.Contains(err.Error(), "3 consecutive checkpoint failures") {
			t.Errorf("fatal error does not name the cap: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("persistent checkpoint failure never escalated to fatal")
	}
	<-done
	if got := countRetryEvents(cfg); got != 2 {
		t.Errorf("checkpoint_retry events = %d, want 2 (third failure escalates)", got)
	}
}
