package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const doc = `<movieDB><director><name/><movie><title/></movie></director></movieDB>`

func TestSetupAndServe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	addr, handler, code := setup([]string{"-in", path, "-req", "title=2", "-addr", ":0"}, &out, &errb)
	if code != 0 {
		t.Fatalf("setup exit %d: %s", code, errb.String())
	}
	if addr != ":0" || handler == nil {
		t.Fatal("setup returned no handler")
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Errorf("banner: %s", out.String())
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/query?path=director.movie.title")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("query status = %d", resp.StatusCode)
	}
}

func TestSetupErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if _, _, code := setup(nil, &out, &errb); code != 2 {
		t.Errorf("no input exit = %d, want 2", code)
	}
	if _, _, code := setup([]string{"-badflag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if _, _, code := setup([]string{"-in", "/nonexistent.xml"}, &out, &errb); code != 1 {
		t.Errorf("missing file exit = %d, want 1", code)
	}
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, code := setup([]string{"-in", path, "-req", "x=bad"}, &out, &errb); code != 1 {
		t.Errorf("bad req exit = %d, want 1", code)
	}
}
