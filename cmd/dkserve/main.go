// Command dkserve serves a D(k)-index over HTTP with a JSON API: path,
// regular-path-expression and branching (twig) queries, incremental edge and
// document updates, and the promote/demote/optimize maintenance operations.
//
// Usage:
//
//	dkserve -in doc.xml -req title=2 -addr :8080
//	dkserve -index doc.dkx -addr :8080 -pprof -trace-sample 16 -cache 8192
//	dkserve -in doc.xml -data-dir /var/lib/dk -checkpoint-interval 30s
//
// With -data-dir every mutation is write-ahead logged before it is
// acknowledged and folded into checksummed checkpoints in the background; on
// restart the directory is recovered (newest readable checkpoint + log
// replay) and -in/-index/-req/-tune are ignored in favor of the durable
// state. Repeated checkpoint failures shut the process down with a non-zero
// exit instead of serving with silently degraded durability.
//
// A durable primary (-data-dir) also serves a replication feed under
// /v1/repl/*; a second dkserve started with -replicate-from=<primary URL>
// becomes a read-only replica: it bootstraps from the primary's newest
// checkpoint, tails its WAL, answers reads with an X-Replica-Lag-Seq header,
// rejects writes with a structured read_only error, and fails /v1/readyz
// (while continuing to serve) once its lag exceeds -max-lag.
//
//	dkserve -in doc.xml -data-dir /var/lib/dk -addr :8080
//	dkserve -replicate-from http://127.0.0.1:8080 -max-lag 1000 -addr :8081
//
// Writes go through the group-commit pipeline by default: concurrent
// mutations coalesce into one WAL group frame (a single fsync) and one
// snapshot swap, bounded by -batch-size, with -flush-interval trading
// acknowledgement latency for bigger groups. -batch-size 0 reverts to one
// commit per mutation.
//
//	curl 'localhost:8080/v1/query?q=director.movie.title'
//	curl 'localhost:8080/v1/query?kind=twig&q=movie[actor].title'
//	curl -X POST localhost:8080/v1/query -d '{"queries":[{"q":"director.movie.title"}]}'
//	curl -X POST localhost:8080/v1/promote -d '{"label":"title","k":3}'
//	curl -X POST localhost:8080/v1/mutate -d '{"mutations":[{"op":"add_edge","from":3,"to":9},{"op":"promote","label":"title","k":2}]}'
//	curl 'localhost:8080/v1/watermark'
//	curl 'localhost:8080/v1/metrics'
//	curl 'localhost:8080/v1/events?n=20'
//
// Every route is mounted both under /v1 and at the root (the pre-/v1 paths,
// kept as aliases); /query at the root additionally accepts the legacy
// path=/rpe=/twig= parameter forms.
//
// The process logs one structured line per request, serves Prometheus
// metrics on /metrics and the index lifecycle event stream on /events, and
// shuts down gracefully on SIGINT/SIGTERM — in-flight requests drain and a
// final metrics snapshot is flushed to the log. See internal/server for the
// full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dkindex"
	"dkindex/internal/obs"
	"dkindex/internal/replica"
	"dkindex/internal/server"
	"dkindex/internal/shard"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run wires setup, the listener and the signal-aware serve loop; split from
// main so tests can drive the full lifecycle in-process.
func run(args []string, stdout, stderr io.Writer) int {
	cfg, code := setup(args, stdout, stderr)
	if code != 0 {
		return code
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		cfg.logger.Error("listen failed", "addr", cfg.addr, "err", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve(ctx, ln, cfg)
}

// config is everything setup hands to the serve loop.
type config struct {
	addr     string
	handler  http.Handler
	logger   *slog.Logger
	observer *obs.Observer

	// idx is retained for the shutdown path: StopBatching drains the
	// group-commit queue before the final checkpoint captures the log. It is
	// nil when -shards armed the sharded engine instead.
	idx *dkindex.Index

	// Durability: store is non-nil when -data-dir armed the write-ahead log —
	// a single Store, or the sharded engine fanning to its per-shard stores;
	// ckptEvery > 0 runs the background checkpoint loop.
	store     durable
	ckptEvery time.Duration

	// repl is non-nil when -replicate-from made this process a read-only
	// follower; serve runs its tail loop alongside the HTTP server.
	repl *replica.Replica

	// ckptRetry overrides the checkpoint retry schedule; zero fields fall
	// back to the production constants. Tests shrink it to exercise the
	// backoff and escalation paths in milliseconds.
	ckptRetry ckptRetryPolicy

	// HTTP hygiene.
	readHeaderTimeout time.Duration
	idleTimeout       time.Duration

	// rtEvery > 0 polls runtime telemetry (goroutines, heap, GC pauses,
	// snapshot age) into the registry at that interval.
	rtEvery time.Duration

	// ready backs /readyz: true once setup finished, false again the moment
	// a shutdown starts draining, so load balancers stop routing here first.
	ready atomic.Bool
}

// durable abstracts the persistence the serve loop checkpoints and closes: a
// single *dkindex.Store, or the sharded *shard.Engine whose methods fan to
// every per-shard store.
type durable interface {
	Appended() uint64
	Checkpoint() error
	Epoch() uint64
	Close() error
}

// setup parses flags, loads and tunes the index, and returns the ready
// configuration; a non-zero code aborts startup.
func setup(args []string, stdout, stderr io.Writer) (*config, int) {
	fs := flag.NewFlagSet("dkserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		in          = fs.String("in", "", "XML input file")
		load        = fs.String("index", "", "load a previously saved index")
		req         = fs.String("req", "", "per-label requirements, e.g. title=2,name=1")
		tune        = fs.Int("tune", 0, "tune with a sampled workload of N queries")
		seed        = fs.Int64("seed", 1, "seed for -tune")
		pprofOn     = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		traceSample = fs.Int("trace-sample", 64, "sample 1 query in N for tracing (0 disables)")
		cacheSize   = fs.Int("cache", dkindex.DefaultResultCacheSize, "result cache capacity in entries (0 disables)")

		dataDir     = fs.String("data-dir", "", "durable store directory (WAL + checkpoints); recovered on start, created from -in/-index when empty")
		ckptEvery   = fs.Duration("checkpoint-interval", time.Minute, "background checkpoint interval with -data-dir (0 disables)")
		maxInflight = fs.Int("max-inflight", 0, "bound on concurrently served requests; excess shed with 503 (0 = unbounded)")
		batchSize   = fs.Int("batch-size", dkindex.DefaultMaxBatch, "group-commit batch cap: concurrent mutations coalesce into one WAL fsync and one snapshot swap (0 disables batching)")
		flushEvery  = fs.Duration("flush-interval", 0, "group-commit coalescing window; 0 flushes as soon as the committer is free")
		rtEvery     = fs.Duration("runtime-interval", 10*time.Second, "runtime telemetry poll interval (goroutines, heap, GC pauses; 0 disables)")
		readHdrTO   = fs.Duration("read-header-timeout", 5*time.Second, "bound on reading a request's headers (0 disables)")
		idleTO      = fs.Duration("idle-timeout", 2*time.Minute, "bound on idle keep-alive connections (0 disables)")

		shards   = fs.Int("shards", 1, "partition the index into N shards served by scatter-gather (documents route round-robin; >1 enables the sharded engine)")
		replFrom = fs.String("replicate-from", "", "run as a read-only replica of the primary at this base URL (e.g. http://primary:8080)")
		maxLag   = fs.Uint64("max-lag", 0, "replica staleness bound in global sequences: /v1/readyz fails past it while reads keep serving (0 = always ready once bootstrapped)")
		bootTO   = fs.Duration("bootstrap-timeout", 30*time.Second, "bound on the replica's initial checkpoint bootstrap from the primary")
	)
	if err := fs.Parse(args); err != nil {
		return nil, 2
	}
	logger := slog.New(slog.NewTextHandler(stderr, nil))
	observer := obs.NewObserverWith(obs.NewRegistry(), obs.NewStream(256), obs.NewTracer(*traceSample, 32))

	if *shards > 1 && *replFrom != "" {
		fmt.Fprintln(stderr, "dkserve: -shards and -replicate-from are mutually exclusive (replication ships one WAL; shards keep one per shard)")
		return nil, 2
	}

	// Replica mode: bootstrap from the primary's replication feed instead of
	// any local source, serve read-only, and gate readiness on the lag bound.
	if *replFrom != "" {
		if *dataDir != "" {
			fmt.Fprintln(stderr, "dkserve: -replicate-from and -data-dir are mutually exclusive (a replica follows the primary's durability)")
			return nil, 2
		}
		if *in != "" || *load != "" {
			logger.Warn("replica bootstraps from the primary; -in/-index ignored")
		}
		primary := strings.TrimRight(*replFrom, "/")
		rep := replica.New(replica.Config{
			Primary:  primary,
			Observer: observer,
			MaxLag:   *maxLag,
		})
		bctx, cancel := context.WithTimeout(context.Background(), *bootTO)
		err := rep.Bootstrap(bctx)
		cancel()
		if err != nil {
			fmt.Fprintf(stderr, "dkserve: bootstrap from %s: %v\n", primary, err)
			return nil, 1
		}
		idx := rep.Index()
		if *cacheSize != dkindex.DefaultResultCacheSize {
			idx.SetResultCache(*cacheSize)
		}
		srv := server.New(idx)
		if *pprofOn {
			srv.EnablePprof()
		}
		srv.SetMaxInFlight(*maxInflight)
		srv.SetReplicaMode(primary, rep.Status)
		cfg := &config{
			addr:              *addr,
			logger:            logger,
			observer:          observer,
			idx:               idx,
			repl:              rep,
			readHeaderTimeout: *readHdrTO,
			idleTimeout:       *idleTO,
			rtEvery:           *rtEvery,
		}
		srv.SetReadyCheck(func() error {
			if !cfg.ready.Load() {
				return fmt.Errorf("not serving (starting up or draining)")
			}
			return rep.Ready()
		})
		cfg.handler = logRequests(srv, logger)
		cfg.ready.Store(true)
		s := idx.Stats()
		fmt.Fprintf(stdout, "dkserve: replica of %s, %d data nodes, index %d nodes (max k=%d), listening on %s\n",
			primary, s.DataNodes, s.IndexNodes, s.MaxK, *addr)
		return cfg, 0
	}

	// Sharded mode: N partitioned indexes behind the scatter-gather engine,
	// each with its own snapshots, result cache, WAL and checkpoint epoch. A
	// data directory that already holds a shard map re-opens sharded even
	// without the flag, so restarts cannot silently change the topology.
	if *shards > 1 || (*dataDir != "" && shard.Exists(nil, *dataDir)) {
		return setupSharded(*shards, shardedOpts{
			addr: *addr, in: *in, load: *load, req: *req, tune: *tune,
			dataDir: *dataDir, ckptEvery: *ckptEvery, cacheSize: *cacheSize,
			pprofOn: *pprofOn, maxInflight: *maxInflight,
			readHdrTO: *readHdrTO, idleTO: *idleTO, rtEvery: *rtEvery,
		}, observer, logger, stdout, stderr)
	}

	var (
		idx   *dkindex.Index
		store *dkindex.Store
		rep   *dkindex.LoadReport
		err   error
	)
	haveStore := *dataDir != "" && dkindex.StoreExists(nil, *dataDir)
	switch {
	case haveStore:
		// The durable state wins over -in/-index: recovery replays the
		// newest checkpoint plus its write-ahead log chain.
		if *in != "" || *load != "" {
			logger.Warn("existing store takes precedence; -in/-index ignored", "dataDir", *dataDir)
		}
		var rec *dkindex.RecoveryReport
		store, rec, err = dkindex.OpenStore(*dataDir, &dkindex.StoreOptions{Observer: observer})
		if err == nil {
			idx = store.Index()
			logger.Info("store recovered",
				"checkpoint", rec.Checkpoint,
				"epoch", rec.Epoch,
				"replayed", rec.Replayed,
				"truncatedTail", rec.TruncatedTail,
				"chainBroken", rec.ChainBroken,
				"corruptCheckpoints", strings.Join(rec.CorruptCheckpoints, ","))
		}
	case *load != "":
		idx, err = dkindex.OpenFile(*load)
	case *in != "":
		var f *os.File
		if f, err = os.Open(*in); err == nil {
			idx, rep, err = dkindex.LoadXMLWithReport(f, nil)
			f.Close()
		}
	default:
		fmt.Fprintln(stderr, "dkserve: one of -in or -index is required")
		return nil, 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "dkserve: %v\n", err)
		return nil, 1
	}
	idx.Observe(observer)
	if *cacheSize != dkindex.DefaultResultCacheSize {
		idx.SetResultCache(*cacheSize)
	}
	if rep != nil && len(rep.DanglingRefs) > 0 {
		observer.AddDanglingRefs(len(rep.DanglingRefs))
		logger.Warn("document has dangling IDREF references",
			"count", len(rep.DanglingRefs),
			"refs", strings.Join(firstN(rep.DanglingRefs, 5), ","))
	}
	// Tuning applies only to fresh indexes: a recovered store's requirements
	// are part of its durable state and re-tuning every restart would drift.
	if haveStore {
		if *tune > 0 || *req != "" {
			logger.Warn("store carries its own tuned requirements; -tune/-req ignored")
		}
	} else if *tune > 0 {
		if err := idx.Tune(*tune, *seed); err != nil {
			fmt.Fprintf(stderr, "dkserve: %v\n", err)
			return nil, 1
		}
	} else if *req != "" {
		reqs, err := dkindex.ParseRequirements(*req)
		if err != nil {
			fmt.Fprintf(stderr, "dkserve: %v\n", err)
			return nil, 1
		}
		if err := idx.SetRequirements(reqs); err != nil {
			fmt.Fprintf(stderr, "dkserve: %v\n", err)
			return nil, 1
		}
	}
	// A fresh store is created only after tuning so checkpoint 0 already
	// carries the requirements and the log starts empty.
	if *dataDir != "" && store == nil {
		store, err = dkindex.CreateStore(*dataDir, idx, &dkindex.StoreOptions{Observer: observer})
		if err != nil {
			fmt.Fprintf(stderr, "dkserve: %v\n", err)
			return nil, 1
		}
		logger.Info("store created", "dataDir", *dataDir)
	}
	// The batcher arms last, after the store attached, so its very first
	// group commit already write-ahead logs. Mutations now coalesce: one WAL
	// fsync and one snapshot swap per group instead of per request.
	if *batchSize > 0 {
		if err := idx.StartBatching(dkindex.BatchOptions{MaxBatch: *batchSize, FlushInterval: *flushEvery}); err != nil {
			fmt.Fprintf(stderr, "dkserve: %v\n", err)
			return nil, 1
		}
		logger.Info("group commit armed", "maxBatch", *batchSize, "flushInterval", *flushEvery)
	}
	srv := server.New(idx)
	if *pprofOn {
		srv.EnablePprof()
	}
	srv.SetMaxInFlight(*maxInflight)
	if store != nil {
		// A durable primary serves the replication feed: replicas bootstrap
		// from /v1/repl/checkpoint and tail /v1/repl/wal.
		srv.SetReplSource(store)
	}
	cfg := &config{
		addr:              *addr,
		logger:            logger,
		observer:          observer,
		idx:               idx,
		ckptEvery:         *ckptEvery,
		readHeaderTimeout: *readHdrTO,
		idleTimeout:       *idleTO,
		rtEvery:           *rtEvery,
	}
	if store != nil {
		// Assigned conditionally: a nil *Store boxed into the durable
		// interface would defeat the serve loop's nil checks.
		cfg.store = store
	}
	srv.SetReadyCheck(func() error {
		if !cfg.ready.Load() {
			return fmt.Errorf("not serving (starting up or draining)")
		}
		return nil
	})
	cfg.handler = logRequests(srv, logger)
	cfg.ready.Store(true)
	s := idx.Stats()
	fmt.Fprintf(stdout, "dkserve: %d data nodes, index %d nodes (max k=%d), listening on %s\n",
		s.DataNodes, s.IndexNodes, s.MaxK, *addr)
	return cfg, 0
}

// shardedOpts carries the flag values setupSharded consumes.
type shardedOpts struct {
	addr, in, load, req string
	tune                int
	dataDir             string
	ckptEvery           time.Duration
	cacheSize           int
	pprofOn             bool
	maxInflight         int
	readHdrTO, idleTO   time.Duration
	rtEvery             time.Duration
}

// setupSharded builds the scatter-gather engine behind the same HTTP surface:
// a fresh directory is partitioned into n per-shard stores, an existing one
// re-opens with its recorded shard count (the topology is part of the durable
// state), and without -data-dir the engine serves in memory.
func setupSharded(n int, o shardedOpts, observer *obs.Observer, logger *slog.Logger, stdout, stderr io.Writer) (*config, int) {
	if o.load != "" {
		fmt.Fprintln(stderr, "dkserve: -index holds a single monolithic snapshot; it cannot seed a sharded engine (use -in)")
		return nil, 2
	}
	var (
		eng       *shard.Engine
		recovered bool
		err       error
	)
	opts := &dkindex.StoreOptions{Observer: observer}
	switch {
	case o.dataDir != "" && shard.Exists(nil, o.dataDir):
		var reports []*dkindex.RecoveryReport
		eng, reports, err = shard.OpenSharded(o.dataDir, opts)
		if err == nil {
			recovered = true
			if o.in != "" {
				logger.Warn("existing sharded store takes precedence; -in ignored", "dataDir", o.dataDir)
			}
			replayed := 0
			for _, r := range reports {
				replayed += r.Replayed
			}
			logger.Info("sharded store recovered", "shards", eng.NumShards(), "documents", eng.Map().NumDocs(), "replayed", replayed)
		}
	case o.dataDir != "":
		eng, err = shard.CreateSharded(o.dataDir, n, opts)
		if err == nil {
			logger.Info("sharded store created", "dataDir", o.dataDir, "shards", n)
		}
	default:
		eng, err = shard.New(n)
	}
	if err != nil {
		fmt.Fprintf(stderr, "dkserve: %v\n", err)
		return nil, 1
	}
	eng.Observe(observer)
	if o.cacheSize != dkindex.DefaultResultCacheSize {
		eng.SetResultCache(o.cacheSize)
	}
	if !recovered {
		if o.in != "" {
			f, err := os.Open(o.in)
			if err == nil {
				_, err = eng.AddDocument(f, nil)
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(stderr, "dkserve: %v\n", err)
				return nil, 1
			}
		}
		if o.req != "" {
			reqs, err := dkindex.ParseRequirements(o.req)
			if err == nil {
				err = eng.SetRequirements(reqs)
			}
			if err != nil {
				fmt.Fprintf(stderr, "dkserve: %v\n", err)
				return nil, 1
			}
		}
	} else if o.req != "" || o.tune > 0 {
		logger.Warn("sharded store carries its own requirements; -req/-tune ignored")
	}
	if o.tune > 0 && !recovered {
		logger.Warn("-tune samples one monolithic workload; not supported with -shards (use /v1/optimize against the live load)")
	}

	srv := server.NewBackend(eng)
	if o.pprofOn {
		srv.EnablePprof()
	}
	srv.SetMaxInFlight(o.maxInflight)
	cfg := &config{
		addr:              o.addr,
		logger:            logger,
		observer:          observer,
		ckptEvery:         o.ckptEvery,
		readHeaderTimeout: o.readHdrTO,
		idleTimeout:       o.idleTO,
		rtEvery:           o.rtEvery,
	}
	if o.dataDir != "" {
		cfg.store = eng
	}
	srv.SetReadyCheck(func() error {
		if !cfg.ready.Load() {
			return fmt.Errorf("not serving (starting up or draining)")
		}
		return nil
	})
	cfg.handler = logRequests(srv, logger)
	cfg.ready.Store(true)
	s := eng.Stats()
	fmt.Fprintf(stdout, "dkserve: %d shards, %d data nodes, index %d nodes (max k=%d), listening on %s\n",
		eng.NumShards(), s.DataNodes, s.IndexNodes, s.MaxK, o.addr)
	return cfg, 0
}

func firstN(s []string, n int) []string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// shutdownGrace bounds how long in-flight requests may drain after a
// termination signal.
const shutdownGrace = 10 * time.Second

// Background checkpoint failures retry with capped exponential backoff (the
// log chain keeps every acknowledged mutation durable meanwhile) rather than
// waiting for the next tick; maxCheckpointFailures consecutive failures still
// shut the process down non-zero — a server that can no longer persist is
// degraded in a way an operator must see, not paper over.
const (
	maxCheckpointFailures  = 8
	checkpointBackoffFloor = 250 * time.Millisecond
	checkpointBackoffCap   = 30 * time.Second
)

// ckptRetryPolicy is the checkpoint retry schedule; zero fields mean the
// production constants above.
type ckptRetryPolicy struct {
	floor, cap  time.Duration
	maxFailures int
}

func (p ckptRetryPolicy) normalized() ckptRetryPolicy {
	if p.floor <= 0 {
		p.floor = checkpointBackoffFloor
	}
	if p.cap <= 0 {
		p.cap = checkpointBackoffCap
	}
	if p.maxFailures <= 0 {
		p.maxFailures = maxCheckpointFailures
	}
	return p
}

// serve runs the HTTP server on ln until it fails, ctx is cancelled (the
// signal path), or durability is lost (repeated checkpoint failures). On the
// way out in-flight requests drain within shutdownGrace, a final checkpoint
// captures the log's tail, and a final metrics snapshot is flushed to the log.
func serve(ctx context.Context, ln net.Listener, cfg *config) int {
	hs := &http.Server{
		Handler:           cfg.handler,
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	// Runtime telemetry: goroutines, heap, GC pauses and snapshot age, polled
	// into the same registry /metrics serves.
	stopRT := make(chan struct{})
	var rtWG sync.WaitGroup
	if cfg.rtEvery > 0 {
		rtWG.Add(1)
		go func() {
			defer rtWG.Done()
			obs.NewRuntime(cfg.observer).Run(stopRT, cfg.rtEvery)
		}()
	}

	fatal := make(chan error, 1)
	stopCkpt := make(chan struct{})
	var ckptWG sync.WaitGroup
	if cfg.store != nil && cfg.ckptEvery > 0 {
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			checkpointLoop(cfg, stopCkpt, fatal)
		}()
	}

	// Replica mode: the tail loop runs alongside the HTTP server, stopped on
	// every shutdown path (its own context rather than ctx, which only the
	// signal path cancels).
	rctx, stopRepl := context.WithCancel(ctx)
	defer stopRepl()
	var replWG sync.WaitGroup
	if cfg.repl != nil {
		replWG.Add(1)
		go func() {
			defer replWG.Done()
			_ = cfg.repl.Run(rctx)
		}()
	}

	shutdown := func(code int) int {
		cfg.ready.Store(false)
		shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			cfg.logger.Error("shutdown did not drain cleanly", "err", err)
			code = 1
		}
		close(stopRT)
		rtWG.Wait()
		close(stopCkpt)
		ckptWG.Wait()
		stopRepl()
		replWG.Wait()
		// Drain the group-commit queue before the final checkpoint: every
		// acknowledged mutation must be in the log the checkpoint folds.
		// (The sharded engine has no cross-batch batcher, and no idx.)
		if cfg.idx != nil {
			cfg.idx.StopBatching()
		}
		if cfg.store != nil {
			// Capture mutations still only in the log as a final checkpoint,
			// so the next start replays nothing on the happy path.
			if cfg.store.Appended() > 0 {
				if err := cfg.store.Checkpoint(); err != nil {
					cfg.logger.Error("final checkpoint failed (log chain still recovers on restart)", "err", err)
					code = 1
				}
			}
			if err := cfg.store.Close(); err != nil {
				cfg.logger.Error("store close failed", "err", err)
				code = 1
			}
		}
		flushFinalMetrics(cfg)
		return code
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cfg.logger.Error("server failed", "err", err)
			return shutdown(1)
		}
		return shutdown(0)
	case <-ctx.Done():
		cfg.logger.Info("shutdown signal received, draining requests", "grace", shutdownGrace)
		return shutdown(0)
	case err := <-fatal:
		cfg.logger.Error("durability lost, shutting down", "err", err)
		return shutdown(1)
	}
}

// checkpointLoop periodically folds the write-ahead log into a fresh
// checkpoint. A quiet index (no appended records) skips the cycle. A failed
// checkpoint schedules a retry with capped exponential backoff (each attempt
// emits a checkpoint_retry event); only maxCheckpointFailures consecutive
// failures escalate to fatal.
func checkpointLoop(cfg *config, stop <-chan struct{}, fatal chan<- error) {
	pol := cfg.ckptRetry.normalized()
	t := time.NewTicker(cfg.ckptEvery)
	defer t.Stop()
	failures := 0
	backoff := pol.floor
	var retry <-chan time.Time // non-nil while a backoff retry is pending
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if retry != nil || cfg.store.Appended() == 0 {
				continue
			}
		case <-retry:
			retry = nil
		}
		if err := cfg.store.Checkpoint(); err != nil {
			failures++
			if failures >= pol.maxFailures {
				cfg.logger.Error("checkpoint failed", "err", err, "consecutive", failures)
				fatal <- fmt.Errorf("%d consecutive checkpoint failures, last: %w", failures, err)
				return
			}
			cfg.logger.Warn("checkpoint failed, retrying with backoff",
				"err", err, "consecutive", failures, "backoff", backoff)
			cfg.observer.RecordEvent(obs.Event{
				Type: obs.EventCheckpointRetry,
				Detail: fmt.Sprintf("attempt %d/%d failed: %v; next try in %v",
					failures, pol.maxFailures, err, backoff),
			})
			retry = time.After(backoff)
			backoff = min(2*backoff, pol.cap)
			continue
		}
		failures, backoff = 0, pol.floor
		cfg.logger.Info("checkpoint written", "epoch", cfg.store.Epoch())
	}
}

// flushFinalMetrics renders the registry one last time into the log so the
// process's closing state survives after the /metrics endpoint is gone.
func flushFinalMetrics(cfg *config) {
	var sb strings.Builder
	if err := cfg.observer.Registry.WritePrometheus(&sb); err != nil {
		cfg.logger.Error("final metrics snapshot failed", "err", err)
		return
	}
	cfg.logger.Info("final metrics snapshot",
		"events", cfg.observer.Events.LastSeq(),
		"traces", cfg.observer.Tracer.Sampled(),
		"metrics", sb.String())
}

// statusWriter captures the response status and size for request logging.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// logRequests wraps h with one structured log line per request.
func logRequests(h http.Handler, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		// The server's middleware stamps X-Request-ID on every /v1 response;
		// logging it links log lines to /v1/slow entries and sampled traces.
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"durMS", float64(time.Since(start).Microseconds())/1000,
			"requestID", sw.Header().Get("X-Request-ID"))
	})
}
