// Command dkserve serves a D(k)-index over HTTP with a JSON API: path,
// regular-path-expression and branching (twig) queries, incremental edge and
// document updates, and the promote/demote/optimize maintenance operations.
//
// Usage:
//
//	dkserve -in doc.xml -req title=2 -addr :8080
//	dkserve -index doc.dkx -addr :8080 -pprof -trace-sample 16 -cache 8192
//
//	curl 'localhost:8080/v1/query?q=director.movie.title'
//	curl 'localhost:8080/v1/query?kind=twig&q=movie[actor].title'
//	curl -X POST localhost:8080/v1/query -d '{"queries":[{"q":"director.movie.title"}]}'
//	curl -X POST localhost:8080/v1/promote -d '{"label":"title","k":3}'
//	curl 'localhost:8080/v1/metrics'
//	curl 'localhost:8080/v1/events?n=20'
//
// Every route is mounted both under /v1 and at the root (the pre-/v1 paths,
// kept as aliases); /query at the root additionally accepts the legacy
// path=/rpe=/twig= parameter forms.
//
// The process logs one structured line per request, serves Prometheus
// metrics on /metrics and the index lifecycle event stream on /events, and
// shuts down gracefully on SIGINT/SIGTERM — in-flight requests drain and a
// final metrics snapshot is flushed to the log. See internal/server for the
// full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dkindex"
	"dkindex/internal/obs"
	"dkindex/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run wires setup, the listener and the signal-aware serve loop; split from
// main so tests can drive the full lifecycle in-process.
func run(args []string, stdout, stderr io.Writer) int {
	cfg, code := setup(args, stdout, stderr)
	if code != 0 {
		return code
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		cfg.logger.Error("listen failed", "addr", cfg.addr, "err", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve(ctx, ln, cfg)
}

// config is everything setup hands to the serve loop.
type config struct {
	addr     string
	handler  http.Handler
	logger   *slog.Logger
	observer *obs.Observer
}

// setup parses flags, loads and tunes the index, and returns the ready
// configuration; a non-zero code aborts startup.
func setup(args []string, stdout, stderr io.Writer) (*config, int) {
	fs := flag.NewFlagSet("dkserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		in          = fs.String("in", "", "XML input file")
		load        = fs.String("index", "", "load a previously saved index")
		req         = fs.String("req", "", "per-label requirements, e.g. title=2,name=1")
		tune        = fs.Int("tune", 0, "tune with a sampled workload of N queries")
		seed        = fs.Int64("seed", 1, "seed for -tune")
		pprofOn     = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		traceSample = fs.Int("trace-sample", 64, "sample 1 query in N for tracing (0 disables)")
		cacheSize   = fs.Int("cache", dkindex.DefaultResultCacheSize, "result cache capacity in entries (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, 2
	}
	logger := slog.New(slog.NewTextHandler(stderr, nil))
	observer := obs.NewObserverWith(obs.NewRegistry(), obs.NewStream(256), obs.NewTracer(*traceSample, 32))

	var (
		idx *dkindex.Index
		rep *dkindex.LoadReport
		err error
	)
	switch {
	case *load != "":
		idx, err = dkindex.OpenFile(*load)
	case *in != "":
		var f *os.File
		if f, err = os.Open(*in); err == nil {
			idx, rep, err = dkindex.LoadXMLWithReport(f, nil)
			f.Close()
		}
	default:
		fmt.Fprintln(stderr, "dkserve: one of -in or -index is required")
		return nil, 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "dkserve: %v\n", err)
		return nil, 1
	}
	idx.Observe(observer)
	if *cacheSize != dkindex.DefaultResultCacheSize {
		idx.SetResultCache(*cacheSize)
	}
	if rep != nil && len(rep.DanglingRefs) > 0 {
		observer.AddDanglingRefs(len(rep.DanglingRefs))
		logger.Warn("document has dangling IDREF references",
			"count", len(rep.DanglingRefs),
			"refs", strings.Join(firstN(rep.DanglingRefs, 5), ","))
	}
	if *tune > 0 {
		if err := idx.Tune(*tune, *seed); err != nil {
			fmt.Fprintf(stderr, "dkserve: %v\n", err)
			return nil, 1
		}
	} else if *req != "" {
		reqs, err := dkindex.ParseRequirements(*req)
		if err != nil {
			fmt.Fprintf(stderr, "dkserve: %v\n", err)
			return nil, 1
		}
		idx.SetRequirements(reqs)
	}
	srv := server.New(idx)
	if *pprofOn {
		srv.EnablePprof()
	}
	s := idx.Stats()
	fmt.Fprintf(stdout, "dkserve: %d data nodes, index %d nodes (max k=%d), listening on %s\n",
		s.DataNodes, s.IndexNodes, s.MaxK, *addr)
	return &config{
		addr:     *addr,
		handler:  logRequests(srv, logger),
		logger:   logger,
		observer: observer,
	}, 0
}

func firstN(s []string, n int) []string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// shutdownGrace bounds how long in-flight requests may drain after a
// termination signal.
const shutdownGrace = 10 * time.Second

// serve runs the HTTP server on ln until it fails or ctx is cancelled (the
// signal path); on cancellation in-flight requests drain within
// shutdownGrace and a final metrics snapshot is flushed to the log.
func serve(ctx context.Context, ln net.Listener, cfg *config) int {
	hs := &http.Server{Handler: cfg.handler}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cfg.logger.Error("server failed", "err", err)
			return 1
		}
		return 0
	case <-ctx.Done():
		cfg.logger.Info("shutdown signal received, draining requests", "grace", shutdownGrace)
		shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		code := 0
		if err := hs.Shutdown(shutCtx); err != nil {
			cfg.logger.Error("shutdown did not drain cleanly", "err", err)
			code = 1
		}
		flushFinalMetrics(cfg)
		return code
	}
}

// flushFinalMetrics renders the registry one last time into the log so the
// process's closing state survives after the /metrics endpoint is gone.
func flushFinalMetrics(cfg *config) {
	var sb strings.Builder
	if err := cfg.observer.Registry.WritePrometheus(&sb); err != nil {
		cfg.logger.Error("final metrics snapshot failed", "err", err)
		return
	}
	cfg.logger.Info("final metrics snapshot",
		"events", cfg.observer.Events.LastSeq(),
		"traces", cfg.observer.Tracer.Sampled(),
		"metrics", sb.String())
}

// statusWriter captures the response status and size for request logging.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// logRequests wraps h with one structured log line per request.
func logRequests(h http.Handler, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"durMS", float64(time.Since(start).Microseconds())/1000)
	})
}
