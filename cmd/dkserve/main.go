// Command dkserve serves a D(k)-index over HTTP with a JSON API: path,
// regular-path-expression and branching (twig) queries, incremental edge and
// document updates, and the promote/demote/optimize maintenance operations.
//
// Usage:
//
//	dkserve -in doc.xml -req title=2 -addr :8080
//	dkserve -index doc.dkx -addr :8080
//
//	curl 'localhost:8080/query?path=director.movie.title'
//	curl 'localhost:8080/query?twig=movie[actor].title'
//	curl -X POST localhost:8080/promote -d '{"label":"title","k":3}'
//	curl -X POST localhost:8080/optimize -d '{"budget":2000}'
//
// See internal/server for the full API.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"dkindex"
	"dkindex/internal/server"
)

func main() {
	addr, handler, code := setup(os.Args[1:], os.Stdout, os.Stderr)
	if code != 0 {
		os.Exit(code)
	}
	if err := http.ListenAndServe(addr, handler); err != nil {
		fmt.Fprintf(os.Stderr, "dkserve: %v\n", err)
		os.Exit(1)
	}
}

// setup parses flags, loads and tunes the index, and returns the listen
// address and ready handler; a non-zero code aborts startup.
func setup(args []string, stdout, stderr io.Writer) (string, http.Handler, int) {
	fs := flag.NewFlagSet("dkserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr = fs.String("addr", ":8080", "listen address")
		in   = fs.String("in", "", "XML input file")
		load = fs.String("index", "", "load a previously saved index")
		req  = fs.String("req", "", "per-label requirements, e.g. title=2,name=1")
		tune = fs.Int("tune", 0, "tune with a sampled workload of N queries")
		seed = fs.Int64("seed", 1, "seed for -tune")
	)
	if err := fs.Parse(args); err != nil {
		return "", nil, 2
	}

	var (
		idx *dkindex.Index
		err error
	)
	switch {
	case *load != "":
		idx, err = dkindex.OpenFile(*load)
	case *in != "":
		var f *os.File
		if f, err = os.Open(*in); err == nil {
			idx, err = dkindex.LoadXML(f, nil)
			f.Close()
		}
	default:
		fmt.Fprintln(stderr, "dkserve: one of -in or -index is required")
		return "", nil, 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "dkserve: %v\n", err)
		return "", nil, 1
	}
	if *tune > 0 {
		if err := idx.Tune(*tune, *seed); err != nil {
			fmt.Fprintf(stderr, "dkserve: %v\n", err)
			return "", nil, 1
		}
	} else if *req != "" {
		reqs, err := dkindex.ParseRequirements(*req)
		if err != nil {
			fmt.Fprintf(stderr, "dkserve: %v\n", err)
			return "", nil, 1
		}
		idx.SetRequirements(reqs)
	}
	s := idx.Stats()
	fmt.Fprintf(stdout, "dkserve: %d data nodes, index %d nodes (max k=%d), listening on %s\n",
		s.DataNodes, s.IndexNodes, s.MaxK, *addr)
	return *addr, server.New(idx), 0
}
