// Command dkquery loads an XML document, builds a D(k)-index and evaluates
// path queries against it, reporting results and the paper's cost model.
//
// Usage:
//
//	dkquery -in doc.xml -req title=2,name=1 "director.movie.title"
//	dkquery -in doc.xml -tune 100 -rpe "movieDB//name"
//	dkquery -in doc.xml -twig "movie[actor].title"
//	dkquery -in doc.xml -tune 100 -saveindex doc.dkx
//	dkquery -index doc.dkx "person.name"
//	dkgen -dataset xmark -scale 0.05 | dkquery -tune 100 "person.name"
//
// With no query arguments, queries are read one per line from stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dkindex"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dkquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in      = fs.String("in", "", "XML input file (default stdin)")
		req     = fs.String("req", "", "per-label requirements, e.g. title=2,name=1")
		tune    = fs.Int("tune", 0, "tune with a sampled workload of N queries instead of -req")
		seed    = fs.Int64("seed", 1, "seed for -tune")
		isRPE   = fs.Bool("rpe", false, "treat queries as regular path expressions")
		isTwig  = fs.Bool("twig", false, "treat queries as branching (twig) path queries")
		explain = fs.Bool("explain", false, "print per-index-node detail for each query")
		attrs   = fs.Bool("attrs", false, "materialize attributes as nodes")
		vals    = fs.Bool("values", false, "materialize text values as VALUE nodes")
		quiet   = fs.Bool("quiet", false, "print only counts, not node ids")
		summary = fs.Bool("summary", false, "print the index shape summary after loading")
		audit   = fs.Int("audit", -1, "semantically audit the index up to this similarity level and exit")
		dot     = fs.Bool("dot", false, "print the index graph in Graphviz DOT and exit")
		load    = fs.String("index", "", "load a previously saved index instead of parsing XML")
		save    = fs.String("saveindex", "", "save the built index to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "dkquery: %v\n", err)
		return 1
	}

	var idx *dkindex.Index
	if *load != "" {
		var err error
		if idx, err = dkindex.OpenFile(*load); err != nil {
			return fail(err)
		}
	} else {
		src := stdin
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				return fail(err)
			}
			defer f.Close()
			src = f
		}
		var err error
		idx, err = dkindex.LoadXML(src, &dkindex.LoadOptions{
			IncludeAttributes: *attrs,
			IncludeValues:     *vals,
		})
		if err != nil {
			return fail(err)
		}
	}
	switch {
	case *tune > 0:
		if err := idx.Tune(*tune, *seed); err != nil {
			return fail(err)
		}
	case *req != "":
		reqs, err := dkindex.ParseRequirements(*req)
		if err != nil {
			return fail(err)
		}
		idx.SetRequirements(reqs)
	}
	if *save != "" {
		if err := idx.SaveFile(*save); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "index saved to %s\n", *save)
	}
	s := idx.Stats()
	fmt.Fprintf(stderr, "loaded: %d data nodes, %d data edges; index: %d nodes, %d edges, max k=%d\n",
		s.DataNodes, s.DataEdges, s.IndexNodes, s.IndexEdges, s.MaxK)
	if *summary {
		fmt.Fprint(stderr, idx.Summary().String())
	}
	if *audit >= 0 {
		if err := idx.Audit(*audit); err != nil {
			fmt.Fprintf(stderr, "dkquery: audit FAILED: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "audit passed up to level %d\n", *audit)
		return 0
	}
	if *dot {
		if err := idx.IG().WriteDOT(stdout, "dk", idx.Graph().Labels()); err != nil {
			return fail(err)
		}
		return 0
	}

	queries := fs.Args()
	if len(queries) == 0 {
		if *in == "" && *load == "" {
			fmt.Fprintln(stderr, "dkquery: no queries given and stdin already consumed by the document")
			return 2
		}
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" && !strings.HasPrefix(line, "#") {
				queries = append(queries, line)
			}
		}
		if err := sc.Err(); err != nil {
			return fail(err)
		}
	}
	for _, q := range queries {
		if *explain {
			e, err := idx.Explain(q)
			if err != nil {
				fmt.Fprintf(stderr, "dkquery: %q: %v\n", q, err)
				continue
			}
			fmt.Fprint(stdout, e.String())
			continue
		}
		var (
			res   []dkindex.NodeID
			stats dkindex.QueryStats
			err   error
		)
		switch {
		case *isRPE:
			res, stats, err = idx.QueryRPE(q)
		case *isTwig:
			res, stats, err = idx.QueryTwig(q)
		default:
			res, stats, err = idx.Query(q)
		}
		if err != nil {
			fmt.Fprintf(stderr, "dkquery: %q: %v\n", q, err)
			continue
		}
		fmt.Fprintf(stdout, "%s: %d results (cost: %d index nodes, %d validated data nodes, %d validations)\n",
			q, len(res), stats.IndexNodesVisited, stats.DataNodesValidated, stats.Validations)
		if !*quiet {
			for i, n := range res {
				if i == 20 {
					fmt.Fprintf(stdout, "  ... %d more\n", len(res)-20)
					break
				}
				fmt.Fprintf(stdout, "  node %d (%s)\n", n, idx.LabelName(n))
			}
		}
	}
	return 0
}
