package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const doc = `<?xml version="1.0"?>
<movieDB>
  <director id="d1"><name/><movie id="m1"><title/></movie></director>
  <director id="d2"><name/><movie id="m2"><title/></movie></director>
  <actor id="a1" movieref="m1"><name/></actor>
</movieDB>
`

func writeDoc(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPathQuery(t *testing.T) {
	path := writeDoc(t)
	var out, errb bytes.Buffer
	code := run([]string{"-in", path, "-req", "title=2", "director.movie.title"},
		strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "2 results") {
		t.Errorf("output: %s", out.String())
	}
	if !strings.Contains(out.String(), "0 validations") {
		t.Errorf("tuned query validated: %s", out.String())
	}
	if !strings.Contains(errb.String(), "loaded:") {
		t.Error("stats line missing")
	}
}

func TestRunStdinDocumentAndQueries(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-quiet", "movie.title"}, strings.NewReader(doc), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "movie.title: 2 results") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunQueriesFromStdin(t *testing.T) {
	path := writeDoc(t)
	var out, errb bytes.Buffer
	code := run([]string{"-in", path, "-quiet"},
		strings.NewReader("# comment\ndirector.name\n\nmovie.title\n"), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "director.name: 2 results") ||
		!strings.Contains(out.String(), "movie.title: 2 results") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunRPEAndTwig(t *testing.T) {
	path := writeDoc(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-in", path, "-rpe", "-quiet", "movieDB//name"},
		strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("rpe exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "movieDB//name: 3 results") {
		t.Errorf("rpe output: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"-in", path, "-twig", "-quiet", "director[name].movie"},
		strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("twig exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "director[name].movie: 2 results") {
		t.Errorf("twig output: %s", out.String())
	}
}

func TestRunSaveAndLoadIndex(t *testing.T) {
	path := writeDoc(t)
	idxPath := filepath.Join(t.TempDir(), "doc.dkx")
	var out, errb bytes.Buffer
	if code := run([]string{"-in", path, "-req", "title=2", "-saveindex", idxPath, "-quiet", "movie.title"},
		strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("save exit %d: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-index", idxPath, "-quiet", "director.movie.title"},
		strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("load exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "2 results") || !strings.Contains(out.String(), "0 validations") {
		t.Errorf("loaded index output: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-in", "/nonexistent.xml", "q"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Errorf("missing file exit = %d", code)
	}
	if code := run([]string{"-badflag"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
	path := writeDoc(t)
	if code := run([]string{"-in", path, "-req", "title=x", "q"}, strings.NewReader(""), &out, &errb); code != 1 {
		t.Errorf("bad req exit = %d", code)
	}
	// Malformed query: reported on stderr, run continues with exit 0.
	errb.Reset()
	if code := run([]string{"-in", path, "a..b"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Errorf("malformed query exit = %d", code)
	}
	if !strings.Contains(errb.String(), "a..b") {
		t.Error("malformed query not reported")
	}
	// No queries, no stdin document source.
	if code := run([]string{}, strings.NewReader(doc), &out, &errb); code != 2 {
		t.Errorf("no queries exit = %d, want 2", code)
	}
}

func TestRunExplain(t *testing.T) {
	path := writeDoc(t)
	var out, errb bytes.Buffer
	code := run([]string{"-in", path, "-explain", "director.movie.title"},
		strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "index nodes matched") ||
		!strings.Contains(out.String(), "validated") {
		t.Errorf("explain output: %s", out.String())
	}
}

func TestRunDOTAndAudit(t *testing.T) {
	path := writeDoc(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-in", path, "-req", "title=2", "-dot"},
		strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("dot exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "digraph dk") {
		t.Errorf("dot output: %s", out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-in", path, "-req", "title=2", "-audit", "2"},
		strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("audit exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "audit passed") {
		t.Errorf("audit output: %s", errb.String())
	}
}
