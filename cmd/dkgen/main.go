// Command dkgen generates the synthetic datasets of the paper's evaluation
// as XML documents: the XMark-like auction site and the NASA-like
// astronomical metadata (Section 6).
//
// Usage:
//
//	dkgen -dataset xmark -scale 0.1 -seed 1 -o auction.xml
//	dkgen -dataset nasa  -scale 0.1 -seed 2 -o nasa.xml
//	dkgen -dataset dblp  -scale 0.1 -seed 3 -o dblp.xml
//
// Scale 1.0 corresponds roughly to the paper's 10 MB XMark file
// (about 100k elements); nasa at the paper's size is scale 1.5.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dkindex/internal/datagen"
	"dkindex/internal/xmlgraph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dkgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataset = fs.String("dataset", "xmark", "dataset to generate: xmark, nasa or dblp")
		scale   = fs.Float64("scale", 0.1, "size factor (1.0 ~ 100k elements)")
		seed    = fs.Int64("seed", 0, "random seed (0 = dataset default)")
		out     = fs.String("o", "", "output file (default stdout)")
		stats   = fs.Bool("stats", false, "print graph statistics to stderr after generating")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var doc *xmlgraph.Elem
	switch *dataset {
	case "xmark":
		cfg := datagen.XMarkScale(*scale)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		doc = datagen.XMark(cfg)
	case "nasa":
		cfg := datagen.NASAScale(*scale)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		doc = datagen.NASA(cfg)
	case "dblp":
		cfg := datagen.DBLPScale(*scale)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		doc = datagen.DBLP(cfg)
	default:
		fmt.Fprintf(stderr, "dkgen: unknown dataset %q (want xmark, nasa or dblp)\n", *dataset)
		return 2
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "dkgen: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := doc.WriteXML(w); err != nil {
		fmt.Fprintf(stderr, "dkgen: %v\n", err)
		return 1
	}
	if *stats {
		g, rep, err := datagen.Graph(doc)
		if err != nil {
			fmt.Fprintf(stderr, "dkgen: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "%s  refEdges=%d dangling=%d\n",
			g.ComputeStats(), rep.ReferenceEdges, len(rep.DanglingRefs))
	}
	return 0
}
