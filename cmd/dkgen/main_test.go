package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunXMarkToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dataset", "xmark", "-scale", "0.01"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "<site>") {
		t.Error("xmark output missing <site>")
	}
}

func TestRunNasaWithStats(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dataset", "nasa", "-scale", "0.01", "-stats"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "<datasets>") {
		t.Error("nasa output missing <datasets>")
	}
	if !strings.Contains(errb.String(), "refEdges=") {
		t.Error("stats missing from stderr")
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.xml")
	var out, errb bytes.Buffer
	if code := run([]string{"-scale", "0.01", "-o", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("output file empty")
	}
	if out.Len() != 0 {
		t.Error("stdout not empty when writing to file")
	}
}

func TestRunSeedChangesOutput(t *testing.T) {
	var a, b, c, errb bytes.Buffer
	run([]string{"-scale", "0.01", "-seed", "7"}, &a, &errb)
	run([]string{"-scale", "0.01", "-seed", "7"}, &b, &errb)
	run([]string{"-scale", "0.01", "-seed", "8"}, &c, &errb)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different output")
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("different seeds produced identical output")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dataset", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown dataset exit = %d, want 2", code)
	}
	if code := run([]string{"-nosuchflag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"-o", "/nonexistent-dir/x.xml", "-scale", "0.01"}, &out, &errb); code != 1 {
		t.Errorf("bad output path exit = %d, want 1", code)
	}
}
