// The serve experiment measures the index as a *served* system, not a
// library: it boots the real HTTP server on a loopback listener over the
// XMark dataset and drives it with the loadgen harness in four scenarios —
// {closed, open} loop × {read-only, concurrent writer} — reporting log-linear
// latency quantiles (p50/p90/p99/p999) per scenario and per query kind.
// The generated plan can be recorded to a JSONL trace and replayed later, so
// serving regressions are reproducible request-for-request.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"dkindex"
	"dkindex/internal/experiments"
	"dkindex/internal/graph"
	"dkindex/internal/loadgen"
	"dkindex/internal/obs"
	"dkindex/internal/server"
)

// serveOptions parameterizes the serve experiment (flags in main).
type serveOptions struct {
	Duration    time.Duration
	Warmup      time.Duration
	Concurrency int
	Rate        float64
	Seed        int64
	JSONOut     string // BENCH_7.json target ("" = don't write)
	RecordPath  string // write the plan as a JSONL trace
	ReplayPath  string // read the plan from a JSONL trace instead
}

// serveScenario is one loadgen run within the experiment.
type serveScenario struct {
	Name string `json:"name"`
	// Mutations counts writer edge operations applied during the run
	// (0 for the read-only scenarios).
	Mutations uint64          `json:"mutations"`
	Report    *loadgen.Report `json:"report"`
}

// serveResult is the JSON shape recorded as BENCH_7.json.
type serveResult struct {
	Dataset     string          `json:"dataset"`
	Plan        int             `json:"planOps"`
	Concurrency int             `json:"concurrency"`
	Rate        float64         `json:"rate"`
	DurationNS  time.Duration   `json:"durationNS"`
	WarmupNS    time.Duration   `json:"warmupNS"`
	Scenarios   []serveScenario `json:"scenarios"`
	Slow        []obs.SlowEntry `json:"slowQueries"`
}

// buildServePlan derives a mixed path/RPE/twig plan from the dataset's query
// load: every workload path verbatim, a descendant RPE (first//last) and a
// branching twig (first[second].second) from each long-enough path, plus the
// XMark staples the snapshot microbenchmarks use. Ops that fail against the
// index (unparseable derivations) are dropped so the measured traffic is all
// 200s.
func buildServePlan(ds *experiments.Dataset, idx *dkindex.Index) []loadgen.Op {
	labels := ds.G.Labels()
	var candidates []loadgen.Op
	for _, q := range ds.W.Queries {
		path := q.Format(labels)
		candidates = append(candidates, loadgen.Op{Kind: "path", Query: path})
		seg := strings.Split(path, ".")
		if len(seg) >= 3 {
			candidates = append(candidates, loadgen.Op{Kind: "rpe", Query: seg[0] + "//" + seg[len(seg)-1]})
		}
		if len(seg) >= 2 {
			candidates = append(candidates, loadgen.Op{Kind: "twig", Query: seg[0] + "[" + seg[1] + "]." + seg[1]})
		}
	}
	candidates = append(candidates,
		loadgen.Op{Kind: "rpe", Query: "open_auction.itemref//name"},
		loadgen.Op{Kind: "rpe", Query: "person.name|item.name"},
		loadgen.Op{Kind: "twig", Query: "item[mailbox].name"},
		loadgen.Op{Kind: "twig", Query: "person[name].emailaddress"},
	)
	plan := candidates[:0]
	for _, op := range candidates {
		if _, err := idx.Run(dkindex.Request{Kind: dkindex.Kind(op.Kind), Text: op.Query, Limit: -1}); err == nil {
			plan = append(plan, op)
		}
	}
	return plan
}

// mutatorBatch is how many mutations each writer POST carries: enough to
// exercise the group-commit path without letting one request dominate the
// snapshot churn cadence.
const mutatorBatch = 8

// mutator drives the write pipeline through the served API: every period it
// POSTs one /v1/mutate batch of paired edge additions and removals, so the
// measured churn goes through the same JSON endpoint, WAL group commit and
// snapshot swap a real client would use. Returns the count of acknowledged
// mutations once stopped.
func mutator(client *http.Client, base string, edges [][2]graph.NodeID, period time.Duration, stop <-chan struct{}) <-chan uint64 {
	done := make(chan uint64, 1)
	go func() {
		var n uint64
		for i := 0; ; i++ {
			select {
			case <-stop:
				done <- n
				return
			case <-time.After(period):
			}
			var b strings.Builder
			b.WriteString(`{"mutations":[`)
			for j := 0; j < mutatorBatch; j += 2 {
				e := edges[(i*mutatorBatch/2+j/2)%len(edges)]
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, `{"op":"add_edge","from":%d,"to":%d},{"op":"remove_edge","from":%d,"to":%d}`,
					e[0], e[1], e[0], e[1])
			}
			b.WriteString(`]}`)
			resp, err := client.Post(base+"/v1/mutate", "application/json", strings.NewReader(b.String()))
			if err != nil {
				continue
			}
			var env struct {
				Acks []struct {
					Error string `json:"error"`
				} `json:"acks"`
			}
			err = json.NewDecoder(resp.Body).Decode(&env)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				continue
			}
			for _, a := range env.Acks {
				if a.Error == "" {
					n++
				}
			}
		}
	}()
	return done
}

// serveExperiment runs the four load scenarios against a freshly served index
// and renders the latency table.
func serveExperiment(stdout io.Writer, ds *experiments.Dataset, opt serveOptions) error {
	// The served index gets its own clone and observer: the writer scenarios
	// mutate it, and the slow log / RED metrics below belong to this run.
	idx := dkindex.FromGraph(ds.G.Clone(), reqNames(ds))
	o := obs.NewObserverWith(obs.NewRegistry(), obs.NewStream(256), obs.NewTracer(64, 64))
	idx.Observe(o)
	srv := server.New(idx)

	stopRT := make(chan struct{})
	defer close(stopRT)
	go obs.NewRuntime(o).Run(stopRT, 500*time.Millisecond)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	var plan []loadgen.Op
	if opt.ReplayPath != "" {
		f, err := os.Open(opt.ReplayPath)
		if err != nil {
			return err
		}
		plan, err = loadgen.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "serve: replaying %d ops from %s\n", len(plan), opt.ReplayPath)
	} else {
		plan = buildServePlan(ds, idx)
		if len(plan) == 0 {
			return fmt.Errorf("serve: empty plan for %s", ds.Name)
		}
	}
	if opt.RecordPath != "" {
		f, err := os.Create(opt.RecordPath)
		if err != nil {
			return err
		}
		err = loadgen.WriteTrace(f, plan)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "serve: recorded %d ops to %s\n", len(plan), opt.RecordPath)
	}
	edges, err := ds.RandomEdges(64, opt.Seed)
	if err != nil {
		return err
	}

	res := serveResult{
		Dataset: ds.Name, Plan: len(plan),
		Concurrency: opt.Concurrency, Rate: opt.Rate,
		DurationNS: opt.Duration, WarmupNS: opt.Warmup,
	}
	type scenario struct {
		name   string
		mode   loadgen.Mode
		mutate bool
	}
	scenarios := []scenario{
		{"closed_readonly", loadgen.Closed, false},
		{"closed_mutating", loadgen.Closed, true},
		{"open_readonly", loadgen.Open, false},
		{"open_mutating", loadgen.Open, true},
	}
	// mutatePeriod targets tens of snapshot publications per second: enough
	// churn to defeat the result cache's generation key without turning the
	// run into a build benchmark.
	const mutatePeriod = 25 * time.Millisecond
	mutClient := &http.Client{Timeout: 30 * time.Second}
	for _, sc := range scenarios {
		var stopMut chan struct{}
		var mutDone <-chan uint64
		if sc.mutate {
			stopMut = make(chan struct{})
			mutDone = mutator(mutClient, base, edges, mutatePeriod, stopMut)
		}
		rep, err := loadgen.Run(loadgen.Config{
			BaseURL:     base,
			Plan:        plan,
			Mode:        sc.mode,
			Concurrency: opt.Concurrency,
			Rate:        opt.Rate,
			Duration:    opt.Duration,
			Warmup:      opt.Warmup,
		})
		var muts uint64
		if sc.mutate {
			close(stopMut)
			muts = <-mutDone
		}
		if err != nil {
			return fmt.Errorf("serve %s: %w", sc.name, err)
		}
		res.Scenarios = append(res.Scenarios, serveScenario{Name: sc.name, Mutations: muts, Report: rep})
	}
	res.Slow = o.Slow.Snapshot()
	if len(res.Slow) > 10 {
		res.Slow = res.Slow[:10]
	}

	renderServe(stdout, &res)
	if err := verifyServeMetrics(stdout, base); err != nil {
		return err
	}
	if opt.JSONOut != "" {
		f, err := os.Create(opt.JSONOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(&res)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "serve: wrote %s\n", opt.JSONOut)
	}
	return nil
}

// reqNames converts the workload's mined requirements to label names for
// FromGraph.
func reqNames(ds *experiments.Dataset) map[string]int {
	out := make(map[string]int)
	for l, k := range ds.W.Requirements() {
		out[ds.G.Labels().Name(l)] = k
	}
	return out
}

func renderServe(w io.Writer, res *serveResult) {
	fmt.Fprintf(w, "Serving latency (%s, %d plan ops, conc %d, open rate %.0f/s, %v + %v warmup per scenario)\n",
		res.Dataset, res.Plan, res.Concurrency, res.Rate, res.DurationNS, res.WarmupNS)
	fmt.Fprintf(w, "%-17s %9s %6s %7s %9s %9s %9s %9s %9s %6s\n",
		"scenario", "requests", "errs", "dropped", "req/s", "p50", "p90", "p99", "p999", "muts")
	ms := func(us float64) string { return fmt.Sprintf("%.2fms", us/1e3) }
	for _, sc := range res.Scenarios {
		s := sc.Report.Overall
		fmt.Fprintf(w, "%-17s %9d %6d %7d %9.0f %9s %9s %9s %9s %6d\n",
			sc.Name, sc.Report.Requests, sc.Report.Errors, sc.Report.Dropped,
			sc.Report.Throughput, ms(s.P50US), ms(s.P90US), ms(s.P99US), ms(s.P999US), sc.Mutations)
		kinds := make([]string, 0, len(sc.Report.ByKind))
		for k := range sc.Report.ByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			ks := sc.Report.ByKind[k]
			fmt.Fprintf(w, "  %-15s %9d %*s p50=%s p99=%s p999=%s\n",
				k, ks.Count, 14, "", ms(ks.P50US), ms(ks.P99US), ms(ks.P999US))
		}
	}
	if len(res.Slow) > 0 {
		fmt.Fprintf(w, "slowest queries (top %d of the run):\n", len(res.Slow))
		for _, e := range res.Slow {
			fmt.Fprintf(w, "  %8.2fms %-5s %-40q cost=%d/%d hit=%v id=%s\n",
				float64(e.Duration)/1e6, e.Kind, e.Query,
				e.IndexNodesVisited, e.DataNodesValidated, e.CacheHit, e.RequestID)
		}
	}
}

// verifyServeMetrics scrapes /metrics once, re-parses it and prints the
// instrumentation the run produced: proof the RED pipeline and runtime
// collector were live, and a hard failure if the exposition stops parsing.
func verifyServeMetrics(w io.Writer, base string) error {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	fams, err := obs.ParsePrometheusText(resp.Body)
	if err != nil {
		return fmt.Errorf("serve: /metrics stopped parsing: %w", err)
	}
	var served, errors float64
	if f := fams[obs.MetricHTTPRequests]; f != nil {
		for _, s := range f.Samples {
			served += s.Value
		}
	}
	if f := fams[obs.MetricHTTPErrors]; f != nil {
		for _, s := range f.Samples {
			errors += s.Value
		}
	}
	var goroutines float64
	if f := fams[obs.MetricRuntimeGoroutines]; f != nil && len(f.Samples) == 1 {
		goroutines = f.Samples[0].Value
	}
	fmt.Fprintf(w, "serve: /metrics parsed: %.0f requests, %.0f error responses, %.0f goroutines live\n",
		served, errors, goroutines)
	return nil
}
