// The write experiment measures the write pipeline end to end: a durable
// store on a real filesystem, concurrent writers pushing edge mutations
// through Apply, and concurrent readers on the published snapshots. It runs
// the same workload twice — fsync-per-operation (no batcher armed, every
// Apply is its own WAL append + fsync + snapshot swap) and group-committed
// (StartBatching, mutations coalesce into WAL group frames with one fsync
// and one snapshot swap per group) — and reports acknowledged mutations per
// second for both plus the speedup and the realized batch size. The result
// is recorded as BENCH_8.json via -write-json.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dkindex"
	"dkindex/internal/experiments"
	"dkindex/internal/graph"
)

// writeOptions parameterizes the write experiment (flags in main).
type writeOptions struct {
	Writers int           // concurrent writer goroutines
	Ops     int           // mutations per writer per phase
	Batch   int           // MaxBatch for the group-committed phase
	Window  time.Duration // coalescing window (BatchOptions.FlushInterval)
	Seed    int64
	JSONOut string // BENCH_8.json target ("" = don't write)
}

// writePhase is one measured run: baseline or batched.
type writePhase struct {
	Mode string `json:"mode"`
	// Mutations counts acknowledged (durable) mutations; Rejected counts
	// per-member validation failures (none are expected here).
	Mutations uint64        `json:"mutations"`
	Rejected  uint64        `json:"rejected"`
	Elapsed   time.Duration `json:"elapsedNS"`
	// Throughput is acknowledged mutations per second.
	Throughput float64 `json:"throughput"`
	// Commits is how many snapshot publications (== WAL fsyncs) the phase
	// took; AvgBatch is Mutations/Commits — 1.0 for the baseline by
	// construction, the realized group size when batching.
	Commits  uint64  `json:"commits"`
	AvgBatch float64 `json:"avgBatch"`
	// Reads counts snapshot queries completed by the background readers
	// while the writers ran: proof the read path stayed live.
	Reads uint64 `json:"reads"`
}

// writeResult is the JSON shape recorded as BENCH_8.json.
type writeResult struct {
	Dataset  string        `json:"dataset"`
	Writers  int           `json:"writers"`
	Ops      int           `json:"opsPerWriter"`
	MaxBatch int           `json:"maxBatch"`
	Window   time.Duration `json:"windowNS"`
	Baseline writePhase    `json:"baseline"`
	Batched  writePhase    `json:"batched"`
	// Speedup is Batched.Throughput / Baseline.Throughput.
	Speedup float64 `json:"speedup"`
}

// runWritePhase drives Writers goroutines, each applying Ops edge mutations
// (paired add/remove over a private edge set) against a store-backed index,
// with two background readers cycling an RPE query. When batch > 0 the
// batcher is armed for the duration.
func runWritePhase(idx *dkindex.Index, edges [][2]graph.NodeID, opt writeOptions, batch int) (writePhase, error) {
	ph := writePhase{Mode: "fsync_per_op"}
	if batch > 0 {
		ph.Mode = "group_commit"
		if err := idx.StartBatching(dkindex.BatchOptions{MaxBatch: batch, FlushInterval: opt.Window}); err != nil {
			return ph, err
		}
	}
	gen0 := idx.Generation()
	stopRead := make(chan struct{})
	var reads atomic.Uint64
	var readWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				if _, err := idx.Run(dkindex.Request{Kind: dkindex.KindRPE, Text: "site//item", Limit: -1}); err == nil {
					reads.Add(1)
				}
				// Pollers, not CPU hogs: the readers prove the snapshot path
				// stays live, they must not starve the committer of cores.
				time.Sleep(time.Millisecond)
			}
		}()
	}

	perWriter := len(edges) / opt.Writers
	var acked, rejected atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opt.Writers; w++ {
		mine := edges[w*perWriter : (w+1)*perWriter]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opt.Ops; i++ {
				e := mine[(i/2)%len(mine)]
				op := dkindex.MutAddEdge
				if i%2 == 1 {
					op = dkindex.MutRemoveEdge
				}
				ack, err := idx.Apply(dkindex.Mutation{Op: op, From: e[0], To: e[1]})
				if err != nil || ack.Err != nil {
					rejected.Add(1)
					continue
				}
				acked.Add(1)
			}
		}()
	}
	wg.Wait()
	if batch > 0 {
		idx.StopBatching()
	}
	ph.Elapsed = time.Since(start)
	close(stopRead)
	readWG.Wait()

	ph.Mutations = acked.Load()
	ph.Rejected = rejected.Load()
	ph.Commits = idx.Generation() - gen0
	ph.Reads = reads.Load()
	if ph.Elapsed > 0 {
		ph.Throughput = float64(ph.Mutations) / ph.Elapsed.Seconds()
	}
	if ph.Commits > 0 {
		ph.AvgBatch = float64(ph.Mutations) / float64(ph.Commits)
	}
	return ph, nil
}

// writeExperiment runs the two phases over a fresh durable store each (same
// dataset, same edge plan, same writer count) and renders the comparison.
func writeExperiment(stdout io.Writer, ds *experiments.Dataset, opt writeOptions) error {
	if opt.Writers <= 0 || opt.Ops <= 0 {
		return fmt.Errorf("write: writers and ops must be positive")
	}
	edges, err := ds.RandomEdges(opt.Writers*4, opt.Seed)
	if err != nil {
		return err
	}
	res := writeResult{Dataset: ds.Name, Writers: opt.Writers, Ops: opt.Ops, MaxBatch: opt.Batch, Window: opt.Window}

	// Each phase gets its own store directory so the baseline's log does not
	// inflate the batched phase's recovery or checkpoint work.
	phase := func(batch int) (writePhase, error) {
		dir, err := os.MkdirTemp("", "dkbench-write-*")
		if err != nil {
			return writePhase{}, err
		}
		defer os.RemoveAll(dir)
		idx := dkindex.FromGraph(ds.G.Clone(), reqNames(ds))
		store, err := dkindex.CreateStore(dir, idx, nil)
		if err != nil {
			return writePhase{}, err
		}
		defer store.Close()
		return runWritePhase(idx, edges, opt, batch)
	}
	if res.Baseline, err = phase(0); err != nil {
		return fmt.Errorf("write baseline: %w", err)
	}
	if res.Batched, err = phase(opt.Batch); err != nil {
		return fmt.Errorf("write batched: %w", err)
	}
	if res.Baseline.Throughput > 0 {
		res.Speedup = res.Batched.Throughput / res.Baseline.Throughput
	}

	fmt.Fprintf(stdout, "Write pipeline (%s, %d writers x %d ops, max batch %d, window %v)\n",
		res.Dataset, res.Writers, res.Ops, res.MaxBatch, res.Window)
	fmt.Fprintf(stdout, "%-14s %10s %8s %10s %9s %9s %9s\n",
		"mode", "mutations", "rejected", "muts/s", "commits", "avgbatch", "reads")
	for _, ph := range []writePhase{res.Baseline, res.Batched} {
		fmt.Fprintf(stdout, "%-14s %10d %8d %10.0f %9d %9.1f %9d\n",
			ph.Mode, ph.Mutations, ph.Rejected, ph.Throughput, ph.Commits, ph.AvgBatch, ph.Reads)
	}
	fmt.Fprintf(stdout, "group commit speedup: %.1fx\n", res.Speedup)

	if opt.JSONOut != "" {
		f, err := os.Create(opt.JSONOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(&res)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "write: wrote %s\n", opt.JSONOut)
	}
	return nil
}
