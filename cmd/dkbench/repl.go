// The repl experiment measures WAL-shipped replication as a serving system:
// a durable primary and one streaming read replica, both under the PR 8
// write workload (batched /v1/mutate edge churn at the primary). It reports
// read throughput with the primary alone versus primary + replica serving
// concurrently, and the replica's lag distribution (in sequence numbers)
// sampled through the replicated run — the number a -max-lag deployment
// would gate /v1/readyz on.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"dkindex"
	"dkindex/internal/experiments"
	"dkindex/internal/loadgen"
	"dkindex/internal/obs"
	"dkindex/internal/replica"
	"dkindex/internal/server"
)

// replOptions parameterizes the repl experiment (flags in main; the load
// shape reuses the serve-* knobs so BENCH_7 and BENCH_9 are comparable).
type replOptions struct {
	Duration    time.Duration
	Warmup      time.Duration
	Concurrency int
	Seed        int64
	JSONOut     string // BENCH_9.json target ("" = don't write)
}

// replLag summarizes the replica's lag samples over the replicated scenario.
type replLag struct {
	Samples int    `json:"samples"`
	P50     uint64 `json:"p50"`
	P90     uint64 `json:"p90"`
	P99     uint64 `json:"p99"`
	Max     uint64 `json:"max"`
	// DrainNS is how long the replica took to reach lag 0 after the write
	// workload stopped.
	DrainNS time.Duration `json:"drainNS"`
}

// replResult is the JSON shape recorded as BENCH_9.json.
type replResult struct {
	Dataset     string        `json:"dataset"`
	Plan        int           `json:"planOps"`
	Concurrency int           `json:"concurrency"`
	DurationNS  time.Duration `json:"durationNS"`
	WarmupNS    time.Duration `json:"warmupNS"`
	// PrimaryOnly is the baseline: all read traffic at the primary.
	PrimaryOnly serveScenario `json:"primaryOnly"`
	// ReplPrimary and ReplReplica are the two halves of the replicated
	// scenario: the same closed-loop worker count at each endpoint.
	ReplPrimary serveScenario `json:"replPrimary"`
	ReplReplica serveScenario `json:"replReplica"`
	// Combined is the replicated scenario's total read throughput; Speedup
	// is Combined over the baseline's throughput.
	Combined float64 `json:"combinedThroughput"`
	Speedup  float64 `json:"speedup"`
	Lag      replLag `json:"lag"`
}

// lagQuantile picks the q-quantile from sorted lag samples.
func lagQuantile(sorted []uint64, q float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// replExperiment boots a durable primary, bootstraps one streaming replica
// over HTTP, and measures both serving topologies under write churn.
func replExperiment(stdout io.Writer, ds *experiments.Dataset, opt replOptions) error {
	dir, err := os.MkdirTemp("", "dkbench-repl-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// The primary: a store-managed index served over HTTP with the
	// replication feed enabled — exactly the dkserve -data-dir wiring.
	idx := dkindex.FromGraph(ds.G.Clone(), reqNames(ds))
	store, err := dkindex.CreateStore(dir, idx, nil)
	if err != nil {
		return err
	}
	defer store.Close()
	po := obs.NewObserverWith(obs.NewRegistry(), obs.NewStream(256), obs.NewTracer(0, 8))
	idx.Observe(po)
	psrv := server.New(idx)
	psrv.SetReplSource(store)
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	phs := &http.Server{Handler: psrv}
	go func() { _ = phs.Serve(pln) }()
	defer phs.Close()
	base := "http://" + pln.Addr().String()

	plan := buildServePlan(ds, idx)
	if len(plan) == 0 {
		return fmt.Errorf("repl: empty plan for %s", ds.Name)
	}
	edges, err := ds.RandomEdges(64, opt.Seed)
	if err != nil {
		return err
	}

	res := replResult{
		Dataset: ds.Name, Plan: len(plan), Concurrency: opt.Concurrency,
		DurationNS: opt.Duration, WarmupNS: opt.Warmup,
	}
	const mutatePeriod = 25 * time.Millisecond
	mutClient := &http.Client{Timeout: 30 * time.Second}
	readLoad := func(target string) (*loadgen.Report, error) {
		return loadgen.Run(loadgen.Config{
			BaseURL:     target,
			Plan:        plan,
			Mode:        loadgen.Closed,
			Concurrency: opt.Concurrency,
			Duration:    opt.Duration,
			Warmup:      opt.Warmup,
		})
	}

	// Baseline: every reader at the primary, write churn alongside.
	stopMut := make(chan struct{})
	mutDone := mutator(mutClient, base, edges, mutatePeriod, stopMut)
	rep0, err := readLoad(base)
	close(stopMut)
	muts := <-mutDone
	if err != nil {
		return fmt.Errorf("repl primary_only: %w", err)
	}
	res.PrimaryOnly = serveScenario{Name: "primary_only", Mutations: muts, Report: rep0}

	// The replica: bootstrap from the live checkpoint, then tail the WAL
	// feed continuously while serving read-only /v1 on its own listener.
	ro := obs.NewObserverWith(obs.NewRegistry(), obs.NewStream(256), obs.NewTracer(0, 8))
	rep := replica.New(replica.Config{
		Primary:      base,
		Observer:     ro,
		PollInterval: 5 * time.Millisecond,
		MaxLag:       1 << 16,
		Seed:         opt.Seed,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := rep.Bootstrap(ctx); err != nil {
		return fmt.Errorf("repl bootstrap: %w", err)
	}
	tailDone := make(chan struct{})
	go func() { defer close(tailDone); _ = rep.Run(ctx) }()
	rsrv := server.New(rep.Index())
	rsrv.SetReplicaMode(base, rep.Status)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	rhs := &http.Server{Handler: rsrv}
	go func() { _ = rhs.Serve(rln) }()
	defer rhs.Close()
	rbase := "http://" + rln.Addr().String()

	// Replicated scenario: the same closed-loop worker count at each
	// endpoint, concurrently, with the write churn still at the primary. A
	// sampler records the replica's lag every few milliseconds.
	stopMut = make(chan struct{})
	mutDone = mutator(mutClient, base, edges, mutatePeriod, stopMut)
	stopLag := make(chan struct{})
	lagDone := make(chan []uint64, 1)
	go func() {
		var samples []uint64
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopLag:
				lagDone <- samples
				return
			case <-t.C:
				samples = append(samples, rep.Lag())
			}
		}
	}()
	type loadOut struct {
		rep *loadgen.Report
		err error
	}
	primOut := make(chan loadOut, 1)
	go func() {
		r, err := readLoad(base)
		primOut <- loadOut{r, err}
	}()
	replRep, replErr := readLoad(rbase)
	primRes := <-primOut
	close(stopMut)
	muts = <-mutDone
	close(stopLag)
	samples := <-lagDone
	if primRes.err != nil {
		return fmt.Errorf("repl replicated (primary side): %w", primRes.err)
	}
	if replErr != nil {
		return fmt.Errorf("repl replicated (replica side): %w", replErr)
	}
	res.ReplPrimary = serveScenario{Name: "repl_primary", Mutations: muts, Report: primRes.rep}
	res.ReplReplica = serveScenario{Name: "repl_replica", Report: replRep}

	// Drain: how long the replica takes to catch the primary's final head
	// once writes stop.
	drainStart := time.Now()
	for {
		_, head := store.ReplStatus()
		if rep.Applied() >= head {
			break
		}
		if time.Since(drainStart) > 30*time.Second {
			return fmt.Errorf("repl: replica never drained (applied %d, head %d)", rep.Applied(), head)
		}
		time.Sleep(time.Millisecond)
	}
	drain := time.Since(drainStart)
	cancel()
	<-tailDone

	res.Combined = primRes.rep.Throughput + replRep.Throughput
	if res.PrimaryOnly.Report.Throughput > 0 {
		res.Speedup = res.Combined / res.PrimaryOnly.Report.Throughput
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	res.Lag = replLag{
		Samples: len(samples),
		P50:     lagQuantile(samples, 0.50),
		P90:     lagQuantile(samples, 0.90),
		P99:     lagQuantile(samples, 0.99),
		DrainNS: drain,
	}
	if n := len(samples); n > 0 {
		res.Lag.Max = samples[n-1]
	}

	renderRepl(stdout, &res)
	if opt.JSONOut != "" {
		f, err := os.Create(opt.JSONOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(&res)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "repl: wrote %s\n", opt.JSONOut)
	}
	return nil
}

func renderRepl(w io.Writer, res *replResult) {
	fmt.Fprintf(w, "Replicated serving (%s, %d plan ops, conc %d per endpoint, %v + %v warmup per scenario)\n",
		res.Dataset, res.Plan, res.Concurrency, res.DurationNS, res.WarmupNS)
	fmt.Fprintf(w, "%-14s %9s %6s %9s %9s %9s %9s %6s\n",
		"scenario", "requests", "errs", "req/s", "p50", "p99", "p999", "muts")
	ms := func(us float64) string { return fmt.Sprintf("%.2fms", us/1e3) }
	for _, sc := range []serveScenario{res.PrimaryOnly, res.ReplPrimary, res.ReplReplica} {
		s := sc.Report.Overall
		fmt.Fprintf(w, "%-14s %9d %6d %9.0f %9s %9s %9s %6d\n",
			sc.Name, sc.Report.Requests, sc.Report.Errors,
			sc.Report.Throughput, ms(s.P50US), ms(s.P99US), ms(s.P999US), sc.Mutations)
	}
	fmt.Fprintf(w, "combined read throughput: %.0f req/s (%.2fx primary alone)\n", res.Combined, res.Speedup)
	fmt.Fprintf(w, "replica lag (seqs, %d samples): p50=%d p90=%d p99=%d max=%d; drained in %v\n",
		res.Lag.Samples, res.Lag.P50, res.Lag.P90, res.Lag.P99, res.Lag.Max,
		res.Lag.DrainNS.Round(time.Millisecond))
}
