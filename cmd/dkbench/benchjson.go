package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one parsed `go test -bench` line. Metrics carries the
// per-iteration measurements keyed by unit (ns/op, B/op, allocs/op, plus any
// custom b.ReportMetric units).
type benchResult struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchReport is the JSON document -benchjson emits: the parsed benchmark
// lines plus the environment lines go test prints before them.
type benchReport struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	Pkg     string        `json:"pkg,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []benchResult `json:"results"`
}

// parseBenchLine parses a single benchmark result line, e.g.
//
//	BenchmarkQueryThroughput-8  720  3526880 ns/op  901201 B/op  19412 allocs/op
//
// Returns ok=false for anything that is not a benchmark line.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r.Iterations = iters
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// parseBenchReport reads `go test -bench` text into a report. Non-benchmark
// lines other than the goos/goarch/pkg/cpu preamble are ignored, so the input
// can be a full verbose test log.
func parseBenchReport(r io.Reader) (benchReport, error) {
	var rep benchReport
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if res, ok := parseBenchLine(line); ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("no benchmark result lines found in input")
	}
	return rep, nil
}

// benchToJSON converts `go test -bench` text on r into a JSON report on w.
func benchToJSON(r io.Reader, w io.Writer) error {
	rep, err := parseBenchReport(r)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// minNsPerOp collapses repeated runs of each benchmark to the fastest ns/op —
// the most noise-resistant summary a single machine gives (regressions slow
// the floor; scheduling noise only raises individual runs).
func minNsPerOp(rep benchReport) map[string]float64 {
	best := map[string]float64{}
	for _, r := range rep.Results {
		ns, ok := r.Metrics["ns/op"]
		if !ok {
			continue
		}
		if cur, seen := best[r.Name]; !seen || ns < cur {
			best[r.Name] = ns
		}
	}
	return best
}

// benchGuard compares `go test -bench` text on r against a recorded baseline
// JSON report: for every benchmark present in both, the fastest current ns/op
// must not exceed the fastest baseline ns/op by more than maxPct percent.
// Returns an error listing every regression; benchmarks present on only one
// side are ignored (the baseline scopes what is guarded).
func benchGuard(baseline io.Reader, r io.Reader, w io.Writer, maxPct float64) error {
	var base benchReport
	if err := json.NewDecoder(baseline).Decode(&base); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	cur, err := parseBenchReport(r)
	if err != nil {
		return err
	}
	baseBest, curBest := minNsPerOp(base), minNsPerOp(cur)
	names := make([]string, 0, len(baseBest))
	for name := range baseBest {
		if _, ok := curBest[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no benchmark shared between baseline and current run")
	}
	var failures []string
	for _, name := range names {
		b, c := baseBest[name], curBest[name]
		delta := (c - b) / b * 100
		status := "ok"
		if delta > maxPct {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%% > %.0f%%)", name, b, c, delta, maxPct))
		}
		fmt.Fprintf(w, "benchguard %-40s baseline %12.0f ns/op  current %12.0f ns/op  %+6.1f%%  %s\n",
			name, b, c, delta, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("throughput regression beyond %.0f%%:\n  %s", maxPct, strings.Join(failures, "\n  "))
	}
	return nil
}
