package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// benchResult is one parsed `go test -bench` line. Metrics carries the
// per-iteration measurements keyed by unit (ns/op, B/op, allocs/op, plus any
// custom b.ReportMetric units).
type benchResult struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchReport is the JSON document -benchjson emits: the parsed benchmark
// lines plus the environment lines go test prints before them.
type benchReport struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	Pkg     string        `json:"pkg,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []benchResult `json:"results"`
}

// parseBenchLine parses a single benchmark result line, e.g.
//
//	BenchmarkQueryThroughput-8  720  3526880 ns/op  901201 B/op  19412 allocs/op
//
// Returns ok=false for anything that is not a benchmark line.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r.Iterations = iters
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// benchToJSON converts `go test -bench` text on r into a JSON report on w.
// Non-benchmark lines other than the goos/goarch/pkg/cpu preamble are
// ignored, so the input can be a full verbose test log.
func benchToJSON(r io.Reader, w io.Writer) error {
	var rep benchReport
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if res, ok := parseBenchLine(line); ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark result lines found in input")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
