package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig4", "-scale", "0.02"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"Figure 4", "A(0)", "D(k)", "completed in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig4", "-scale", "0.02", "-csv", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "nosuch"}, &out, &errb); code != 2 {
		t.Errorf("unknown experiment exit = %d, want 2", code)
	}
	if code := run([]string{"-badflag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	// A regular file in the way makes MkdirAll fail regardless of privilege.
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-exp", "fig4", "-scale", "0.01", "-csv", filepath.Join(blocker, "sub")}, &out, &errb); code != 1 {
		t.Errorf("bad csv dir exit = %d, want 1", code)
	}
}
