package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dkindex/internal/obs"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig4", "-scale", "0.02"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"Figure 4", "A(0)", "D(k)", "completed in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig4", "-scale", "0.02", "-csv", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

// TestRunMetricsSnapshot checks -metrics leaves a valid Prometheus text
// record of the experiments that ran.
func TestRunMetricsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig4", "-scale", "0.02", "-metrics", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheusText(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("snapshot unparsable: %v\n%s", err, data)
	}
	f := fams["dkbench_experiments_total"]
	if f == nil || len(f.Samples) != 1 || f.Samples[0].Value != 1 || f.Samples[0].Labels["id"] != "fig4" {
		t.Errorf("experiment counter = %+v", f)
	}
	if fams["dkbench_experiment_seconds"] == nil {
		t.Errorf("duration histogram missing:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "nosuch"}, &out, &errb); code != 2 {
		t.Errorf("unknown experiment exit = %d, want 2", code)
	}
	if code := run([]string{"-badflag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	// A regular file in the way makes MkdirAll fail regardless of privilege.
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-exp", "fig4", "-scale", "0.01", "-csv", filepath.Join(blocker, "sub")}, &out, &errb); code != 1 {
		t.Errorf("bad csv dir exit = %d, want 1", code)
	}
}

func TestBenchJSON(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: dkindex
cpu: some cpu model
BenchmarkQueryThroughput-8   	     720	   3526880 ns/op	  901201 B/op	   19412 allocs/op
PASS
ok  	dkindex	5.1s
`
	var out strings.Builder
	if err := benchToJSON(strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Pkg != "dkindex" || len(rep.Results) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkQueryThroughput" || r.Procs != 8 || r.Iterations != 720 {
		t.Errorf("result = %+v", r)
	}
	if r.Metrics["ns/op"] != 3526880 || r.Metrics["allocs/op"] != 19412 {
		t.Errorf("metrics = %v", r.Metrics)
	}
	if err := benchToJSON(strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Error("want error for input without benchmark lines")
	}
}

// TestBenchGuard exercises the regression guard: best-of-N collapsing, the
// pass/fail threshold, scoping to benchmarks present in the baseline, and
// the missing-baseline skip path of the -benchguard flag.
func TestBenchGuard(t *testing.T) {
	baseline := `{"results": [
		{"name": "BenchmarkQueryThroughput", "iterations": 100, "metrics": {"ns/op": 1100000}},
		{"name": "BenchmarkQueryThroughput", "iterations": 100, "metrics": {"ns/op": 1000000}}
	]}`
	current := func(ns string) string {
		return "BenchmarkQueryThroughput-8 100 " + ns + " ns/op\n" +
			"BenchmarkUnguardedExtra-8 100 9999999 ns/op\nPASS\n"
	}

	var out strings.Builder
	// 5% above the baseline's best run: passes at the 10% threshold.
	if err := benchGuard(strings.NewReader(baseline), strings.NewReader(current("1050000")), &out, 10); err != nil {
		t.Errorf("5%% regression at 10%% threshold: %v", err)
	}
	if !strings.Contains(out.String(), "ok") || strings.Contains(out.String(), "Unguarded") {
		t.Errorf("guard output = %q", out.String())
	}
	// 20% above: fails, naming the benchmark.
	err := benchGuard(strings.NewReader(baseline), strings.NewReader(current("1200000")), &out, 10)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkQueryThroughput") {
		t.Errorf("20%% regression: err = %v", err)
	}
	// Repeated current runs collapse to the fastest: a slow outlier next to a
	// fast run passes.
	noisy := current("2000000") + "BenchmarkQueryThroughput-8 100 1010000 ns/op\n"
	if err := benchGuard(strings.NewReader(baseline), strings.NewReader(noisy), &out, 10); err != nil {
		t.Errorf("best-of-N: %v", err)
	}
	// No shared benchmark is an error, not a silent pass.
	if err := benchGuard(strings.NewReader(baseline), strings.NewReader("BenchmarkOther-8 1 5 ns/op\n"), &out, 10); err == nil {
		t.Error("want error when baseline and current share no benchmark")
	}
	if err := benchGuard(strings.NewReader("not json"), strings.NewReader(current("1000000")), &out, 10); err == nil {
		t.Error("want error for malformed baseline")
	}

	// The flag path: a missing baseline file skips with exit 0 and a notice.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-benchguard", filepath.Join(t.TempDir(), "nope.json")}, &stdout, &stderr); code != 0 {
		t.Errorf("missing baseline exit = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "skipping") {
		t.Errorf("missing baseline notice = %q", stderr.String())
	}
}
