// Command dkbench reproduces the paper's evaluation (Section 6). Each
// experiment id maps to one table or figure:
//
//	fig4      Evaluation cost vs index size, XMark, before updates
//	fig5      Evaluation cost vs index size, NASA, before updates
//	tab1      Update efficiency: 100 edge additions, A(1)..A(4) vs D(k)
//	fig6      Evaluation cost vs index size, XMark, after 100 edge additions
//	fig7      Evaluation cost vs index size, NASA, after 100 edge additions
//	ablation  D(k) decay under updates and recovery via promotion
//	alg4      Algorithm 4 probe vs naive reset on edge addition
//	build     construction cost: 1-index / A(k) / D(k) build times and counters
//	mem       set footprint: succinct extents/postings vs raw slices, all datasets
//	family    full summary family (label-split..F&B) on path and twig loads
//	docinsert incremental document insertion vs baseline vs rebuild
//	apex      the APEX workload-aware competitor: cost and update handling
//	miner     longest-query rule vs budget-aware load mining (not part of
//	          "all": it builds hundreds of candidate indexes)
//	serve     end-to-end serving latency: boots the HTTP server and drives it
//	          with the loadgen harness, closed and open loop, read-only and
//	          under concurrent edge mutations (not part of "all": wall-clock
//	          bound, writes BENCH_7.json via -serve-json)
//	write     write pipeline throughput on a durable store: fsync-per-op vs
//	          group-committed Apply under concurrent writers and readers
//	          (not part of "all": wall-clock bound, writes BENCH_8.json via
//	          -write-json)
//	repl      replicated serving: a durable primary plus one WAL-shipped read
//	          replica under write churn — combined read throughput vs primary
//	          alone and replica lag quantiles (not part of "all": wall-clock
//	          bound, writes BENCH_9.json via -repl-json)
//	shard     sharded scatter-gather: merged query throughput and durable
//	          write throughput at 1/2/4/8 shards vs the monolithic index,
//	          after a bit-identity audit on XMark, NASA and DBLP corpora
//	          (not part of "all": wall-clock bound, writes BENCH_10.json via
//	          -shard-json)
//	shard-audit  the shard experiment's bit-identity audit alone, XMark only
//	          — quick enough for CI
//	all       everything above
//
// Usage:
//
//	dkbench -exp all -scale 1.0 -edges 100 -seed 1
//
// Scale 1.0 matches the paper's dataset sizes (about 10 MB XMark / 15 MB
// NASA); smaller scales run faster with the same qualitative shape.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dkindex/internal/experiments"
	"dkindex/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// bail aborts the run; recovered at the top of run.
type bail struct{ err error }

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("dkbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "all", "experiment: fig4, fig5, tab1, fig6, fig7, ablation, alg4, build, mem, family, docinsert, apex, miner, serve, write, repl, all")
		scale      = fs.Float64("scale", 1.0, "dataset scale (1.0 = paper size)")
		edges      = fs.Int("edges", 100, "edge additions for tab1/fig6/fig7/ablation")
		seed       = fs.Int64("seed", 1, "random seed for workloads and edges")
		maxK       = fs.Int("maxk", 0, "largest A(k) in the series (0 = longest query length)")
		csv        = fs.String("csv", "", "also write each series as CSV files under this directory")
		metrics    = fs.String("metrics", "", "write a Prometheus text snapshot of the run's metrics to this file")
		benchjson  = fs.Bool("benchjson", false, "read `go test -bench` text on stdin, write a JSON report on stdout, and exit")
		benchguard = fs.String("benchguard", "", "read `go test -bench` text on stdin, fail if any benchmark in this baseline JSON `file` regressed beyond -maxregress, and exit")
		maxregress = fs.Float64("maxregress", 10, "benchguard failure threshold: max ns/op regression vs baseline, percent")

		serveDur    = fs.Duration("serve-dur", 3*time.Second, "serve: measured duration per scenario")
		serveWarmup = fs.Duration("serve-warmup", 500*time.Millisecond, "serve: unmeasured warmup per scenario")
		serveConc   = fs.Int("serve-conc", 8, "serve: closed-loop workers / open-loop outstanding bound")
		serveRate   = fs.Float64("serve-rate", 2000, "serve: open-loop arrival rate, requests per second")
		serveJSON   = fs.String("serve-json", "", "serve: write the latency report as JSON to this `file`")
		serveRecord = fs.String("serve-record", "", "serve: record the request plan as a JSONL trace to this `file`")
		serveReplay = fs.String("serve-replay", "", "serve: replay the request plan from this JSONL trace `file`")

		writeWriters = fs.Int("write-writers", 16, "write: concurrent writer goroutines")
		writeOps     = fs.Int("write-ops", 150, "write: mutations per writer per phase")
		writeBatch   = fs.Int("write-batch", 256, "write: MaxBatch for the group-committed phase")
		writeWindow  = fs.Duration("write-window", 2*time.Millisecond, "write: coalescing window for the group-committed phase (0 = natural group commit)")
		writeJSON    = fs.String("write-json", "", "write: write the throughput report as JSON to this `file`")

		replJSON = fs.String("repl-json", "", "repl: write the replicated-serving report as JSON to this `file` (load shape comes from the serve-* flags)")

		shardDocs  = fs.Int("shard-docs", 8, "shard: documents per corpus")
		shardScale = fs.Float64("shard-doc-scale", 0.05, "shard: datagen scale per document")
		shardJSON  = fs.String("shard-json", "", "shard: write the scatter-gather report as JSON to this `file` (duration/readers from the serve-* flags, writers from -write-writers)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *benchjson {
		if err := benchToJSON(os.Stdin, stdout); err != nil {
			fmt.Fprintf(stderr, "dkbench: %v\n", err)
			return 1
		}
		return 0
	}
	if *benchguard != "" {
		f, err := os.Open(*benchguard)
		if err != nil {
			// A missing baseline is not a regression: first runs (and fresh
			// clones that never recorded one) pass with a notice telling the
			// developer how to create it.
			fmt.Fprintf(stderr, "dkbench: benchguard: no baseline at %s (record one with `make bench-baseline`); skipping\n", *benchguard)
			return 0
		}
		defer f.Close()
		if err := benchGuard(f, os.Stdin, stdout, *maxregress); err != nil {
			fmt.Fprintf(stderr, "dkbench: benchguard: %v\n", err)
			return 1
		}
		return 0
	}
	defer func() {
		if r := recover(); r != nil {
			if b, ok := r.(bail); ok {
				fmt.Fprintf(stderr, "dkbench: %v\n", b.err)
				code = 1
				return
			}
			panic(r)
		}
	}()

	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintf(stderr, "dkbench: %v\n", err)
			return 1
		}
	}
	writeCSV := func(name string, f func(w *os.File) error) {
		if *csv == "" {
			return
		}
		fp, err := os.Create(filepath.Join(*csv, name))
		if err == nil {
			err = f(fp)
			if cerr := fp.Close(); err == nil {
				err = cerr
			}
		}
		check(err)
	}

	describe := func(ds *experiments.Dataset) {
		fmt.Fprintf(stdout, "dataset %s: %s, %d queries (max length %d)\n",
			ds.Name, ds.G.ComputeStats(), ds.W.Len(), ds.W.MaxLength())
	}
	// Every experiment feeds the run's metrics registry, so -metrics leaves a
	// machine-readable record of what ran and how long it took alongside the
	// rendered tables.
	reg := obs.NewRegistry()
	expSeconds := obs.ExpBuckets(0.1, 2, 14)
	timed := func(id string, f func()) {
		start := time.Now()
		f()
		elapsed := time.Since(start)
		reg.Counter("dkbench_experiments_total", "Experiments executed, by id.",
			obs.L("id", id)).Inc()
		reg.Histogram("dkbench_experiment_seconds", "Wall time per experiment run.",
			expSeconds, obs.L("id", id)).Observe(elapsed.Seconds())
		fmt.Fprintf(stdout, "[%s completed in %.1fs]\n\n", id, elapsed.Seconds())
	}
	run := func(id string) bool { return *exp == "all" || *exp == id }
	cfg := experiments.AfterUpdateConfig{Edges: *edges, MaxK: *maxK, Seed: *seed}

	var xmark, nasa, dblp *experiments.Dataset
	loadXMark := func() *experiments.Dataset {
		if xmark == nil {
			xmark = mustDataset(experiments.XMarkDataset(*scale, *seed))
			describe(xmark)
		}
		return xmark
	}
	loadNasa := func() *experiments.Dataset {
		if nasa == nil {
			// The paper's NASA file is 1.5x its XMark file.
			nasa = mustDataset(experiments.NasaDataset(*scale*1.5, *seed))
			describe(nasa)
		}
		return nasa
	}
	loadDblp := func() *experiments.Dataset {
		if dblp == nil {
			dblp = mustDataset(experiments.DblpDataset(*scale, *seed))
			describe(dblp)
		}
		return dblp
	}

	ran := false
	if run("fig4") {
		ran = true
		timed("fig4", func() {
			points := must(experiments.EvaluationBeforeUpdate(loadXMark(), *maxK))
			check(experiments.RenderEvalPoints(stdout,
				"Figure 4: evaluation performance, Xmark, before updating", points))
			writeCSV("fig4.csv", func(w *os.File) error { return experiments.WriteEvalPointsCSV(w, points) })
		})
	}
	if run("fig5") {
		ran = true
		timed("fig5", func() {
			points := must(experiments.EvaluationBeforeUpdate(loadNasa(), *maxK))
			check(experiments.RenderEvalPoints(stdout,
				"Figure 5: evaluation performance, Nasa, before updating", points))
			writeCSV("fig5.csv", func(w *os.File) error { return experiments.WriteEvalPointsCSV(w, points) })
		})
	}
	if run("tab1") {
		ran = true
		timed("tab1", func() {
			rows := must(experiments.UpdateEfficiency(loadXMark(), cfg))
			check(experiments.RenderUpdateRows(stdout,
				fmt.Sprintf("Table 1 (Xmark): running time of %d edge additions", *edges), rows))
			writeCSV("tab1_xmark.csv", func(w *os.File) error { return experiments.WriteUpdateRowsCSV(w, rows) })
			rows = must(experiments.UpdateEfficiency(loadNasa(), cfg))
			check(experiments.RenderUpdateRows(stdout,
				fmt.Sprintf("Table 1 (Nasa): running time of %d edge additions", *edges), rows))
			writeCSV("tab1_nasa.csv", func(w *os.File) error { return experiments.WriteUpdateRowsCSV(w, rows) })
		})
	}
	if run("fig6") {
		ran = true
		timed("fig6", func() {
			points := must(experiments.EvaluationAfterUpdate(loadXMark(), cfg))
			check(experiments.RenderEvalPoints(stdout,
				fmt.Sprintf("Figure 6: evaluation performance, Xmark, after %d edge additions", *edges), points))
			writeCSV("fig6.csv", func(w *os.File) error { return experiments.WriteEvalPointsCSV(w, points) })
		})
	}
	if run("fig7") {
		ran = true
		timed("fig7", func() {
			points := must(experiments.EvaluationAfterUpdate(loadNasa(), cfg))
			check(experiments.RenderEvalPoints(stdout,
				fmt.Sprintf("Figure 7: evaluation performance, Nasa, after %d edge additions", *edges), points))
			writeCSV("fig7.csv", func(w *os.File) error { return experiments.WriteEvalPointsCSV(w, points) })
		})
	}
	if run("ablation") {
		ran = true
		timed("ablation", func() {
			a := must(experiments.AblationPromote(loadXMark(), cfg))
			check(experiments.RenderPromoteAblation(stdout,
				"Ablation (Xmark): D(k) decay under updates and recovery via promotion", a))
		})
	}
	if run("apex") {
		ran = true
		timed("apex", func() {
			rows := must(experiments.ApexComparison(loadXMark(), *edges, *seed))
			check(experiments.RenderApexComparison(stdout,
				"APEX comparison (Xmark): workload-aware competitor, update handling", rows))
		})
	}
	if run("docinsert") {
		ran = true
		timed("docinsert", func() {
			rows := must(experiments.DocInsertion(loadXMark(), 5, *seed))
			check(experiments.RenderDocInsertion(stdout,
				"Document insertion (Xmark): 5 documents, incremental vs baseline vs rebuild", rows))
		})
	}
	// The miner searches hundreds of candidate indexes, so it only runs when
	// asked for explicitly.
	if *exp == "miner" {
		ran = true
		timed("miner", func() {
			a := must(experiments.AblationMiner(loadXMark()))
			check(experiments.RenderMinerAblation(stdout,
				"Ablation (Xmark): longest-query rule vs budget-aware load mining", a))
		})
	}
	// The serve experiment is wall-clock bound (four scenarios of -serve-dur
	// each against a live HTTP server), so like miner it is opt-in only.
	if *exp == "serve" {
		ran = true
		timed("serve", func() {
			check(serveExperiment(stdout, loadXMark(), serveOptions{
				Duration:    *serveDur,
				Warmup:      *serveWarmup,
				Concurrency: *serveConc,
				Rate:        *serveRate,
				Seed:        *seed,
				JSONOut:     *serveJSON,
				RecordPath:  *serveRecord,
				ReplayPath:  *serveReplay,
			}))
		})
	}
	// The write experiment runs thousands of durable commits against a real
	// filesystem, so like serve it is opt-in only.
	if *exp == "write" {
		ran = true
		timed("write", func() {
			check(writeExperiment(stdout, loadXMark(), writeOptions{
				Writers: *writeWriters,
				Ops:     *writeOps,
				Batch:   *writeBatch,
				Window:  *writeWindow,
				Seed:    *seed,
				JSONOut: *writeJSON,
			}))
		})
	}
	// The repl experiment boots a primary and a live streaming replica, so
	// like serve and write it is wall-clock bound and opt-in only.
	if *exp == "repl" {
		ran = true
		timed("repl", func() {
			check(replExperiment(stdout, loadXMark(), replOptions{
				Duration:    *serveDur,
				Warmup:      *serveWarmup,
				Concurrency: *serveConc,
				Seed:        *seed,
				JSONOut:     *replJSON,
			}))
		})
	}
	// The shard experiment is wall-clock bound like serve/write/repl, so it
	// is opt-in only; shard-audit is its quick bit-identity check for CI.
	if *exp == "shard" || *exp == "shard-audit" {
		ran = true
		timed(*exp, func() {
			check(shardExperiment(stdout, shardOptions{
				Docs:      *shardDocs,
				DocScale:  *shardScale,
				Duration:  *serveDur,
				Readers:   *serveConc,
				Writers:   *writeWriters,
				Seed:      *seed,
				AuditOnly: *exp == "shard-audit",
				JSONOut:   *shardJSON,
			}))
		})
	}
	if run("family") {
		ran = true
		timed("family", func() {
			rows := must(experiments.FamilyComparison(loadXMark(), *maxK))
			check(experiments.RenderFamily(stdout,
				"Index family comparison (Xmark): sizes and path/twig costs", rows))
		})
	}
	if run("alg4") {
		ran = true
		timed("alg4", func() {
			a := must(experiments.AblationAlg4(loadXMark(), cfg))
			check(experiments.RenderAlg4Ablation(stdout,
				"Ablation (Xmark): Algorithm 4 probe vs naive reset on edge addition", a))
		})
	}
	if run("mem") {
		ran = true
		timed("mem", func() {
			for _, ds := range []*experiments.Dataset{loadXMark(), loadNasa(), loadDblp()} {
				rows := experiments.MemoryFootprint(ds, *maxK)
				check(experiments.RenderMemRows(stdout,
					fmt.Sprintf("Memory footprint (%s): succinct extents and postings vs raw node slices", ds.Name), rows))
				writeCSV(fmt.Sprintf("mem_%s.csv", ds.Name), func(w *os.File) error { return experiments.WriteMemRowsCSV(w, rows) })
			}
		})
	}
	if run("build") {
		ran = true
		timed("build", func() {
			check(experiments.RenderBuildCost(stdout,
				"Construction cost (Xmark): 1-index, A(k), load-tuned D(k)",
				experiments.ConstructionCost(loadXMark(), *maxK)))
			check(experiments.RenderBuildCost(stdout,
				"Construction cost (NASA): 1-index, A(k), load-tuned D(k)",
				experiments.ConstructionCost(loadNasa(), *maxK)))
		})
	}
	if !ran {
		fmt.Fprintf(stderr, "dkbench: unknown experiment %q\n", *exp)
		return 2
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err == nil {
			err = reg.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "dkbench: %v\n", err)
			return 1
		}
	}
	return 0
}

func mustDataset(ds *experiments.Dataset, err error) *experiments.Dataset {
	if err != nil {
		panic(bail{err})
	}
	return ds
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(bail{err})
	}
	return v
}

func check(err error) {
	if err != nil {
		panic(bail{err})
	}
}
