// The shard experiment measures scatter-gather serving: one logical index
// partitioned into N document-routed shards, queried through the Engine's
// parallel fan-out and written through its shard-parallel group commit. For
// shards in {1, 2, 4, 8} it reports merged query throughput (result caches
// off, so every query pays the full scatter + merge) and sustained durable
// write throughput (batches split by owning shard, per-shard WALs fsynced
// concurrently) against the monolithic index on the same corpus. Before any
// timing it audits bit-identity: on multi-document XMark, NASA and DBLP
// corpora the merged results must fingerprint identically to the monolith's.
// The result is recorded as BENCH_10.json via -shard-json; -exp shard-audit
// runs the audit alone (the CI smoke).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dkindex"
	"dkindex/internal/datagen"
	"dkindex/internal/graph"
	"dkindex/internal/shard"
	"dkindex/internal/xmlgraph"
)

// shardOptions parameterizes the shard experiment (flags in main; the load
// shape reuses the serve-* and write-* knobs so BENCH_10 is comparable).
type shardOptions struct {
	Docs      int           // documents per corpus
	DocScale  float64       // datagen scale per document
	Duration  time.Duration // measured duration per throughput phase
	Readers   int           // concurrent query goroutines
	Writers   int           // concurrent writer goroutines
	Seed      int64
	AuditOnly bool   // -exp shard-audit: skip the timed phases
	JSONOut   string // BENCH_10.json target ("" = don't write)
}

// shardTarget is what both serving topologies expose to the harness: the
// monolithic *dkindex.Index and the sharded *shard.Engine.
type shardTarget interface {
	Run(dkindex.Request) (dkindex.Result, error)
	ApplyBatch([]dkindex.Mutation) ([]dkindex.Ack, error)
	AddDocument(io.Reader, *dkindex.LoadOptions) ([]dkindex.NodeID, error)
	SetResultCache(int)
}

// shardAuditRow records one dataset's merged-vs-monolithic fingerprint.
type shardAuditRow struct {
	Dataset     string `json:"dataset"`
	Shards      int    `json:"shards"`
	Docs        int    `json:"docs"`
	Queries     int    `json:"queries"`
	Fingerprint string `json:"fingerprint"`
	Match       bool   `json:"match"`
}

// shardPoint is one topology's measured throughput. Shards 0 marks the
// monolithic baseline.
type shardPoint struct {
	Shards  int    `json:"shards"`
	Queries uint64 `json:"queries"`
	// QueryThroughput is merged queries per second with result caches
	// disabled: every query pays the scatter, per-shard evaluation and merge.
	QueryThroughput float64 `json:"queryThroughput"`
	QuerySpeedup    float64 `json:"querySpeedup"`
	Mutations       uint64  `json:"mutations"`
	Rejected        uint64  `json:"rejected"`
	// WriteThroughput is acknowledged durable mutations per second: each
	// batch splits by owning shard and the per-shard WAL commits run
	// concurrently.
	WriteThroughput float64 `json:"writeThroughput"`
	WriteSpeedup    float64 `json:"writeSpeedup"`
}

// shardResult is the JSON shape recorded as BENCH_10.json.
type shardResult struct {
	Dataset    string          `json:"dataset"`
	Docs       int             `json:"docs"`
	Readers    int             `json:"readers"`
	Writers    int             `json:"writers"`
	DurationNS time.Duration   `json:"durationNS"`
	Audits     []shardAuditRow `json:"audits"`
	Monolith   shardPoint      `json:"monolith"`
	Points     []shardPoint    `json:"points"`
}

// shardCorpus generates docs documents of the named dataset family, each
// with a distinct seed, serialized as XML so the monolith and every engine
// parse identical bytes.
func shardCorpus(kind string, docs int, scale float64, seed int64) ([][]byte, error) {
	out := make([][]byte, docs)
	for i := range out {
		var doc *xmlgraph.Elem
		switch kind {
		case "xmark":
			cfg := datagen.XMarkScale(scale)
			cfg.Seed = seed + int64(i)
			doc = datagen.XMark(cfg)
		case "nasa":
			cfg := datagen.NASAScale(scale)
			cfg.Seed = seed + int64(i)
			doc = datagen.NASA(cfg)
		case "dblp":
			cfg := datagen.DBLPScale(scale)
			cfg.Seed = seed + int64(i)
			doc = datagen.DBLP(cfg)
		default:
			return nil, fmt.Errorf("shard: unknown corpus %q", kind)
		}
		var buf bytes.Buffer
		if err := doc.WriteXML(&buf); err != nil {
			return nil, err
		}
		out[i] = buf.Bytes()
	}
	return out, nil
}

// shardQueries is the per-dataset reference mix: one path, one regular path
// expression and one twig, run unlimited so the full merged sets are
// compared and timed.
func shardQueries(kind string) []dkindex.Request {
	switch kind {
	case "nasa":
		return []dkindex.Request{
			{Kind: dkindex.KindPath, Text: "datasets.dataset.title"},
			{Kind: dkindex.KindRPE, Text: "dataset//keyword"},
			{Kind: dkindex.KindTwig, Text: "dataset[author].title"},
		}
	case "dblp":
		return []dkindex.Request{
			{Kind: dkindex.KindPath, Text: "dblp.article.title"},
			{Kind: dkindex.KindRPE, Text: "dblp//author"},
			{Kind: dkindex.KindTwig, Text: "article[cite].year"},
		}
	default: // xmark
		return []dkindex.Request{
			{Kind: dkindex.KindPath, Text: "site.people.person.name"},
			{Kind: dkindex.KindRPE, Text: "site//item"},
			{Kind: dkindex.KindTwig, Text: "item[incategory].name"},
		}
	}
}

// shardMonolith builds the unsharded reference: a root-only index fed the
// same documents in the same order the engine receives them.
func shardMonolith() *dkindex.Index {
	g := graph.New()
	g.AddRoot()
	return dkindex.FromGraph(g, nil)
}

// loadCorpus feeds every document into the target and returns each
// document's mapping (parsed node -> global id), the raw material for the
// write plan.
func loadCorpus(t shardTarget, corpus [][]byte) ([][]dkindex.NodeID, error) {
	maps := make([][]dkindex.NodeID, len(corpus))
	for i, doc := range corpus {
		m, err := t.AddDocument(bytes.NewReader(doc), datagen.LoadOptions())
		if err != nil {
			return nil, fmt.Errorf("document %d: %w", i, err)
		}
		maps[i] = m
	}
	return maps, nil
}

// shardFingerprint folds the merged node sets and totals of the query mix
// into one hash; identical serving states produce identical fingerprints.
func shardFingerprint(t shardTarget, reqs []dkindex.Request) (string, error) {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, req := range reqs {
		res, err := t.Run(req)
		if err != nil {
			return "", fmt.Errorf("%s %q: %w", req.Kind, req.Text, err)
		}
		put(uint64(res.Total))
		put(uint64(len(res.Nodes)))
		for _, n := range res.Nodes {
			put(uint64(n))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// shardAudit builds the monolith and a sharded engine over one corpus and
// compares their fingerprints.
func shardAudit(kind string, shards int, opt shardOptions) (shardAuditRow, error) {
	row := shardAuditRow{Dataset: kind, Shards: shards, Docs: opt.Docs}
	corpus, err := shardCorpus(kind, opt.Docs, opt.DocScale, opt.Seed)
	if err != nil {
		return row, err
	}
	mono := shardMonolith()
	if _, err := loadCorpus(mono, corpus); err != nil {
		return row, fmt.Errorf("%s monolith: %w", kind, err)
	}
	eng, err := shard.New(shards)
	if err != nil {
		return row, err
	}
	if _, err := loadCorpus(eng, corpus); err != nil {
		return row, fmt.Errorf("%s engine: %w", kind, err)
	}
	reqs := shardQueries(kind)
	row.Queries = len(reqs)
	want, err := shardFingerprint(mono, reqs)
	if err != nil {
		return row, fmt.Errorf("%s monolith: %w", kind, err)
	}
	got, err := shardFingerprint(eng, reqs)
	if err != nil {
		return row, fmt.Errorf("%s engine: %w", kind, err)
	}
	row.Fingerprint = got
	row.Match = got == want
	return row, nil
}

// shardEdgePlan gives each writer a private edge pair inside every document
// (sampled from the document's committed mapping, global root excluded), so
// paired add/remove cycles from concurrent writers never collide and every
// batch spreads across all owning shards.
func shardEdgePlan(maps [][]dkindex.NodeID, writers int, seed int64) [][][2]dkindex.NodeID {
	rng := rand.New(rand.NewSource(seed))
	plan := make([][][2]dkindex.NodeID, writers)
	for w := range plan {
		plan[w] = make([][2]dkindex.NodeID, len(maps))
		for d, m := range maps {
			nodes := m[1:] // m[0] is the global root the document grafted under
			from := nodes[rng.Intn(len(nodes))]
			to := nodes[rng.Intn(len(nodes))]
			plan[w][d] = [2]dkindex.NodeID{from, to}
		}
	}
	return plan
}

// shardQueryPhase drives Readers goroutines over the query mix for the
// measured duration and returns completed queries and queries per second.
// Result caches are off, so this is the cost of real scatter + merge.
func shardQueryPhase(t shardTarget, reqs []dkindex.Request, opt shardOptions) (uint64, float64, error) {
	t.SetResultCache(0)
	var done atomic.Uint64
	var firstErr atomic.Value
	deadline := time.Now().Add(opt.Duration)
	var wg sync.WaitGroup
	for r := 0; r < opt.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; time.Now().Before(deadline); i++ {
				if _, err := t.Run(reqs[i%len(reqs)]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				done.Add(1)
			}
		}(r)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return 0, 0, err
	}
	n := done.Load()
	return n, float64(n) / opt.Duration.Seconds(), nil
}

// shardWritePhase drives Writers goroutines, each looping batches with one
// edge mutation per document (alternating add/remove of the writer's private
// pair), for the measured duration. Against the engine a batch splits across
// every shard and the per-shard WAL commits run concurrently; against the
// monolith the same batch is one serial commit.
func shardWritePhase(t shardTarget, plan [][][2]dkindex.NodeID, opt shardOptions) (acked, rejected uint64, rate float64, err error) {
	var ack, rej atomic.Uint64
	var firstErr atomic.Value
	deadline := time.Now().Add(opt.Duration)
	var wg sync.WaitGroup
	for w := 0; w < opt.Writers; w++ {
		pairs := plan[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]dkindex.Mutation, len(pairs))
			for round := 0; time.Now().Before(deadline); round++ {
				op := dkindex.MutAddEdge
				if round%2 == 1 {
					op = dkindex.MutRemoveEdge
				}
				for d, p := range pairs {
					batch[d] = dkindex.Mutation{Op: op, From: p[0], To: p[1]}
				}
				acks, err := t.ApplyBatch(batch)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				for _, a := range acks {
					if a.Err != nil {
						rej.Add(1)
					} else {
						ack.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return 0, 0, 0, err
	}
	return ack.Load(), rej.Load(), float64(ack.Load()) / opt.Duration.Seconds(), nil
}

// shardMeasure runs both phases against one topology. build returns a fresh
// durable target for the write phase; the query phase reuses it after the
// writes so both see the same (net-unchanged) state.
func shardMeasure(shards int, corpus [][]byte, reqs []dkindex.Request, opt shardOptions) (shardPoint, error) {
	pt := shardPoint{Shards: shards}
	dir, err := os.MkdirTemp("", "dkbench-shard-*")
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(dir)

	var target shardTarget
	var maps [][]dkindex.NodeID
	if shards == 0 {
		idx := shardMonolith()
		store, err := dkindex.CreateStore(dir, idx, nil)
		if err != nil {
			return pt, err
		}
		defer store.Close()
		if maps, err = loadCorpus(idx, corpus); err != nil {
			return pt, err
		}
		target = idx
	} else {
		eng, err := shard.CreateSharded(dir, shards, nil)
		if err != nil {
			return pt, err
		}
		defer eng.Close()
		if maps, err = loadCorpus(eng, corpus); err != nil {
			return pt, err
		}
		target = eng
	}

	if pt.Mutations, pt.Rejected, pt.WriteThroughput, err = shardWritePhase(target, shardEdgePlan(maps, opt.Writers, opt.Seed), opt); err != nil {
		return pt, fmt.Errorf("write phase: %w", err)
	}
	if pt.Queries, pt.QueryThroughput, err = shardQueryPhase(target, reqs, opt); err != nil {
		return pt, fmt.Errorf("query phase: %w", err)
	}
	return pt, nil
}

// shardExperiment audits merged-vs-monolithic bit-identity on all three
// dataset families, then (unless AuditOnly) measures query and write
// throughput at shards in {1, 2, 4, 8} against the monolithic baseline.
func shardExperiment(stdout io.Writer, opt shardOptions) error {
	if opt.Docs <= 0 || opt.Readers <= 0 || opt.Writers <= 0 {
		return fmt.Errorf("shard: docs, readers and writers must be positive")
	}
	res := shardResult{
		Dataset: "xmark", Docs: opt.Docs, Readers: opt.Readers,
		Writers: opt.Writers, DurationNS: opt.Duration,
	}

	kinds := []string{"xmark", "nasa", "dblp"}
	if opt.AuditOnly {
		kinds = kinds[:1] // the CI smoke: XMark only, no timing
	}
	fmt.Fprintf(stdout, "Sharded scatter-gather (%d documents per corpus, scale %g per document)\n", opt.Docs, opt.DocScale)
	fmt.Fprintf(stdout, "%-8s %7s %6s %8s %18s %6s\n", "audit", "shards", "docs", "queries", "fingerprint", "match")
	for _, kind := range kinds {
		row, err := shardAudit(kind, 4, opt)
		if err != nil {
			return err
		}
		res.Audits = append(res.Audits, row)
		fmt.Fprintf(stdout, "%-8s %7d %6d %8d %18s %6v\n",
			row.Dataset, row.Shards, row.Docs, row.Queries, row.Fingerprint, row.Match)
		if !row.Match {
			return fmt.Errorf("shard: %s merged results diverge from the monolith", kind)
		}
	}
	if opt.AuditOnly {
		fmt.Fprintf(stdout, "shard audit: merged results bit-identical to the monolith\n")
		return nil
	}

	corpus, err := shardCorpus("xmark", opt.Docs, opt.DocScale, opt.Seed)
	if err != nil {
		return err
	}
	reqs := shardQueries("xmark")
	if res.Monolith, err = shardMeasure(0, corpus, reqs, opt); err != nil {
		return fmt.Errorf("monolith: %w", err)
	}
	res.Monolith.QuerySpeedup, res.Monolith.WriteSpeedup = 1, 1
	for _, n := range []int{1, 2, 4, 8} {
		pt, err := shardMeasure(n, corpus, reqs, opt)
		if err != nil {
			return fmt.Errorf("%d shards: %w", n, err)
		}
		if res.Monolith.QueryThroughput > 0 {
			pt.QuerySpeedup = pt.QueryThroughput / res.Monolith.QueryThroughput
		}
		if res.Monolith.WriteThroughput > 0 {
			pt.WriteSpeedup = pt.WriteThroughput / res.Monolith.WriteThroughput
		}
		res.Points = append(res.Points, pt)
	}

	fmt.Fprintf(stdout, "\n%-10s %9s %9s %7s %10s %8s %10s %7s\n",
		"topology", "queries", "qry/s", "qry-x", "mutations", "rejected", "muts/s", "wr-x")
	row := func(pt shardPoint) {
		name := "monolith"
		if pt.Shards > 0 {
			name = fmt.Sprintf("%d shards", pt.Shards)
		}
		fmt.Fprintf(stdout, "%-10s %9d %9.0f %6.2fx %10d %8d %10.0f %6.2fx\n",
			name, pt.Queries, pt.QueryThroughput, pt.QuerySpeedup,
			pt.Mutations, pt.Rejected, pt.WriteThroughput, pt.WriteSpeedup)
	}
	row(res.Monolith)
	for _, pt := range res.Points {
		row(pt)
	}

	if opt.JSONOut != "" {
		f, err := os.Create(opt.JSONOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(&res)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "shard: wrote %s\n", opt.JSONOut)
	}
	return nil
}
